"""Table 1 -- FLT retention settings at four HPC facilities.

Paper: NCAR purges any 120-day-old file, OLCF 90, TACC 30, NERSC 12 weeks.
The bench applies every preset to the same snapshot and reports how much
each facility's rule would purge -- the practical content of Table 1.
The benchmark times one full FLT scan of the snapshot.
"""

from repro.analysis import format_bytes, format_table, percent
from repro.core import FACILITY_PRESETS, FixedLifetimePolicy

from conftest import write_result


def test_table1_presets(benchmark, dataset):
    t_c = dataset.config.replay_start

    def flt_scan():
        fs = dataset.fresh_filesystem()
        return FixedLifetimePolicy(FACILITY_PRESETS["OLCF"]).run(fs, t_c)

    benchmark.pedantic(flt_scan, rounds=3, iterations=1)

    rows = []
    for facility in ("NCAR", "OLCF", "NERSC", "TACC"):
        config = FACILITY_PRESETS[facility]
        fs = dataset.fresh_filesystem()
        before = fs.total_bytes
        report = FixedLifetimePolicy(config).run(fs, t_c)
        rows.append([
            facility,
            f"{config.lifetime_days:.0f} days",
            report.purged_files_total,
            format_bytes(report.purged_bytes_total),
            percent(report.purged_bytes_total / before),
        ])
    write_result("table1_facility_presets", format_table(
        ["facility", "lifetime", "files purged", "bytes purged",
         "of snapshot"],
        rows,
        title="Table 1 -- facility FLT presets applied to one snapshot"))

    # Shorter lifetimes purge at least as much.
    purged = {row[0]: row[2] for row in rows}
    assert purged["TACC"] >= purged["OLCF"] >= purged["NCAR"]
