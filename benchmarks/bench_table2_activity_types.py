"""Table 2 -- the activity-type taxonomy.

Paper: operations (job submission, shell login, file access, data
transfer, ...) and outcomes (job/task completion, dataset generation,
publications, ...).  The bench evaluates user activeness under the full
Table 2 taxonomy -- six activity types fed simultaneously -- verifying the
Eq. 6 multi-type combination and timing the evaluation.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import (
    ActivenessEvaluator,
    ActivenessParams,
    Activity,
    ActivityCategory,
    ActivityLedger,
    DATA_TRANSFER,
    DATASET_GENERATED,
    FILE_ACCESS,
    JOB_COMPLETION,
    JOB_SUBMISSION,
    PUBLICATION,
    SHELL_LOGIN,
    classify_all,
    group_counts,
)
from repro.synth import spawn_rng

from conftest import write_result

TYPES = (JOB_SUBMISSION, SHELL_LOGIN, FILE_ACCESS, DATA_TRANSFER,
         JOB_COMPLETION, DATASET_GENERATED, PUBLICATION)


def _taxonomy_ledger(n_users=400, n_per_type=4_000, t_c=10_000 * 86_400):
    rng = spawn_rng(5, "table2")
    ledger = ActivityLedger()
    for atype in TYPES:
        uids = rng.integers(0, n_users, size=n_per_type)
        ts = t_c - rng.integers(0, 180 * 86_400, size=n_per_type)
        impacts = rng.lognormal(2.0, 1.0, size=n_per_type)
        ledger.extend(atype, [Activity(int(u), int(t), float(i))
                              for u, t, i in zip(uids, ts, impacts)])
    return ledger, t_c


def test_table2_taxonomy_evaluation(benchmark):
    ledger, t_c = _taxonomy_ledger()
    evaluator = ActivenessEvaluator(ActivenessParams(period_days=30))

    activeness = benchmark(evaluator.evaluate, ledger, t_c)

    counts = group_counts(classify_all(activeness))
    rows = [[atype.name, atype.category.value,
             len(ledger.activities(atype))] for atype in TYPES]
    lines = [format_table(["activity type", "category", "events"], rows,
                          title="Table 2 -- activity taxonomy in play")]
    lines.append("")
    lines.append(format_table(
        ["classification", "users"],
        [[cls.label, n] for cls, n in counts.items()],
        title="Classification under the 7-type taxonomy (30-day periods)"))
    write_result("table2_activity_types", "\n".join(lines))

    n_ops = len(ledger.types_in(ActivityCategory.OPERATION))
    n_ocs = len(ledger.types_in(ActivityCategory.OUTCOME))
    assert n_ops == 4 and n_ocs == 3
    assert sum(counts.values()) == len(activeness)
