"""Fig. 9 + Tables 4 and 5 -- total retained bytes per group per lifetime.

Paper: both policies scan the same weekly metadata snapshot (Aug 23,
2016) under the same 50 % purge target; ActiveDR retains *more* data for
each active group (up to +213.47 % for both-active at 30 days -- Table 4)
and substantially *less* for both-inactive users (Table 5's negative
column), freeing about half the 32 PB system.

The bench reads the one-shot same-snapshot reports and prints retained
bytes per group for both policies, plus the Table 4 percentage and
Table 5 absolute differences.  The benchmark times one full ActiveDR
retention pass on a fresh snapshot replica.
"""

from repro.analysis import format_bytes, format_table, percent
from repro.core import (
    ActiveDRPolicy,
    ActivenessEvaluator,
    ActivityLedger,
    RetentionConfig,
    UserClass,
)
from repro.emulation import ACTIVEDR, FLT

from conftest import SWEEP_LIFETIMES, write_result

GROUPS = (UserClass.BOTH_ACTIVE, UserClass.OPERATION_ACTIVE_ONLY,
          UserClass.OUTCOME_ACTIVE_ONLY, UserClass.BOTH_INACTIVE)
ACTIVE_GROUPS = GROUPS[:3]


def test_fig9_tables45_retained(benchmark, dataset, snapshot_reports):
    # Benchmark: one ActiveDR retention pass over the pristine snapshot.
    cfg = RetentionConfig()
    t_c = dataset.config.replay_start
    activeness = ActivenessEvaluator(cfg.activeness).evaluate(
        ActivityLedger(), t_c, known_uids=[u.uid for u in dataset.users])

    def adr_pass():
        fs = dataset.fresh_filesystem()
        return ActiveDRPolicy(cfg).run(fs, t_c, activeness=activeness)

    benchmark.pedantic(adr_pass, rounds=3, iterations=1)

    fig9_rows, t4_rows, t5_rows = [], [], []
    for lifetime in SWEEP_LIFETIMES:
        reports = snapshot_reports[lifetime]
        flt_rep, adr_rep = reports[FLT], reports[ACTIVEDR]
        for group in GROUPS:
            fig9_rows.append([
                f"{lifetime:.0f}d", group.label,
                format_bytes(flt_rep.retained_bytes(group)),
                format_bytes(adr_rep.retained_bytes(group)),
            ])
        t4_rows.append([f"{lifetime:.0f}"] + [
            percent((adr_rep.retained_bytes(g) - flt_rep.retained_bytes(g))
                    / flt_rep.retained_bytes(g))
            if flt_rep.retained_bytes(g) else "n/a"
            for g in GROUPS])
        t5_rows.append([f"{lifetime:.0f}"] + [
            format_bytes(adr_rep.retained_bytes(g)
                         - flt_rep.retained_bytes(g))
            for g in GROUPS])

    lines = [format_table(
        ["lifetime", "group", "FLT retained", "ActiveDR retained"],
        fig9_rows,
        title="Fig. 9 -- total size of retained files "
              "(same snapshot, same 50% purge target)")]
    lines.append("")
    lines.append(format_table(
        ["period (days)", "both active", "op only", "oc only",
         "both inactive"],
        t4_rows,
        title="Table 4 -- % of file size ActiveDR retains vs FLT "
              "(paper: +71%/+213%/+36%/+34% actives, -40..-76% inactive)"))
    lines.append("")
    lines.append(format_table(
        ["period (days)", "both active", "op only", "oc only",
         "both inactive"],
        t5_rows,
        title="Table 5 -- retained-size difference (ActiveDR - FLT)"))
    write_result("fig09_tables45_retained", "\n".join(lines))

    # Headline shape: ActiveDR retains at least as much for every active
    # group, at every lifetime; at the paper's 90-day setting it retains
    # less for both-inactive.
    for lifetime in SWEEP_LIFETIMES:
        reports = snapshot_reports[lifetime]
        flt_rep, adr_rep = reports[FLT], reports[ACTIVEDR]
        for group in ACTIVE_GROUPS:
            assert (adr_rep.retained_bytes(group)
                    >= flt_rep.retained_bytes(group)), (lifetime, group)
    rep90 = snapshot_reports[90.0]
    assert (rep90[ACTIVEDR].retained_bytes(UserClass.BOTH_INACTIVE)
            <= rep90[FLT].retained_bytes(UserClass.BOTH_INACTIVE))
