"""Fig. 7 -- per-group monthly file-miss series, FLT vs ActiveDR.

Paper: misses trend upward over the replay year for both policies (the
snapshot starts fresh, then attrition accumulates); the FLT-ActiveDR gap
widens over time; ActiveDR never exceeds FLT in the long run for any of
the four groups.

The bench prints the four per-group monthly series and checks the trend
and the per-group totals.  The benchmark times the series folding.
"""

from repro.analysis import format_table
from repro.core import UserClass
from repro.emulation import ACTIVEDR, FLT

from conftest import write_result


def test_fig7_group_miss_series(benchmark, comparison):
    flt_m, adr_m = comparison[FLT].metrics, comparison[ACTIVEDR].metrics

    def fold_all():
        return {g: (flt_m.monthly_group_misses(g),
                    adr_m.monthly_group_misses(g)) for g in UserClass}

    series = benchmark(fold_all)

    blocks = []
    for group in UserClass:
        flt_series, adr_series = series[group]
        rows = [[month + 1, int(f), int(a)]
                for month, (f, a) in enumerate(zip(flt_series, adr_series))]
        blocks.append(format_table(
            ["month", "FLT misses", "ActiveDR misses"], rows,
            title=f"Fig. 7 -- {group.label}"))
    write_result("fig07_group_miss_series", "\n\n".join(blocks))

    # Rising trend: the second half of the year out-misses the first (FLT).
    total = flt_m.misses
    half = len(total) // 2
    assert total[half:].sum() >= total[:half].sum()

    # ActiveDR totals never exceed FLT by more than noise in any group.
    for group in UserClass:
        flt_total = flt_m.total_group_misses(group)
        adr_total = adr_m.total_group_misses(group)
        assert adr_total <= max(flt_total * 1.10, flt_total + 50), group
