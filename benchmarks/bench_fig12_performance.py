"""Fig. 12 -- performance of the ActiveDR machinery itself.

Paper (on Cori):
  (a) trace loading: user list 48.85 MiB / pubs 3.5 MiB / jobs 419.8 MiB
      resident, 1 min 35 s total load time;
  (b) activeness evaluation ~700 ms on the main rank, purge decisions for
      1,040,886 files in 1-5 s across ranks;
  (c) ~1 h to scan a full metadata snapshot with 20 parallel processes;
  (d) 50-400 s per gzipped shard.

The bench reproduces each panel at library scale: trace load time and RSS
growth (a), activeness-evaluation and purge-decision latency (b), and a
multi-process sharded snapshot scan with per-rank and per-shard timings
(c, d).  The pytest benchmark times the activeness evaluation -- the
paper's headline "under one second" claim.
"""

import os

from repro.analysis import format_table
from repro.core import (
    ActivenessEvaluator,
    ActivityLedger,
    FixedLifetimePolicy,
    JOB_SUBMISSION,
    PUBLICATION,
    RetentionConfig,
    activities_from_jobs,
    activities_from_publications,
)
from repro.parallel import (
    ProbeLog,
    Timer,
    parallel_purge_decisions,
    parallel_shard_scan,
)
from repro.traces import (
    read_app_log,
    read_jobs,
    read_publications,
    read_users,
    write_app_log,
    write_jobs,
    write_publications,
    write_users,
)
from repro.vfs import SnapshotRecord, read_shard, shard_paths, write_snapshot

from conftest import write_result


def _count_records(shard_path):
    return sum(1 for _ in read_shard(shard_path))


def test_fig12_performance(benchmark, dataset, ledger, tmp_path_factory):
    tmp = str(tmp_path_factory.mktemp("fig12"))
    probes = ProbeLog()

    # ---- (a) trace loading: write then load each trace family ----------
    files = {
        "users": (os.path.join(tmp, "users.txt.gz"), write_users,
                  read_users, dataset.users),
        "publications": (os.path.join(tmp, "pubs.txt.gz"),
                         write_publications, read_publications,
                         dataset.publications),
        "jobs": (os.path.join(tmp, "jobs.txt.gz"), write_jobs, read_jobs,
                 dataset.jobs),
        "app log": (os.path.join(tmp, "apps.txt.gz"), write_app_log,
                    read_app_log, dataset.accesses),
    }
    load_rows = []
    for name, (path, writer, reader, records) in files.items():
        writer(path, records)
        with probes.measure(f"load {name}"):
            loaded = list(reader(path))
        load_rows.append([name, len(loaded),
                          f"{probes.timings[f'load {name}'] * 1e3:.0f} ms",
                          f"{probes.memory_mib[f'load {name}']:.1f} MiB"])

    # ---- (b) activeness evaluation + purge decision latency ------------
    t_c = dataset.config.replay_end - 1
    clipped = ledger.until(t_c)
    evaluator = ActivenessEvaluator()
    known = [u.uid for u in dataset.users]

    activeness = benchmark(evaluator.evaluate, clipped, t_c, known)

    with Timer() as eval_timer:
        evaluator.evaluate(clipped, t_c, known)
    fs = dataset.fresh_filesystem()
    with Timer() as purge_timer:
        FixedLifetimePolicy(RetentionConfig()).run(fs, t_c,
                                                   activeness=activeness)

    # ---- (c)/(d) parallel sharded snapshot scan -------------------------
    snapdir = os.path.join(tmp, "snapshot")
    records = (SnapshotRecord(p, m.stripe_count, m.atime, m.mtime, m.ctime,
                              m.uid)
               for p, m in dataset.filesystem.iter_files())
    write_snapshot(snapdir, records, n_shards=8)
    ranks = parallel_shard_scan(shard_paths(snapdir), _count_records,
                                n_ranks=4)
    rank_rows = [[r.rank, len(r.shard_paths),
                  f"{r.total_seconds * 1e3:.0f} ms",
                  f"{min(r.shard_seconds) * 1e3:.0f}-"
                  f"{max(r.shard_seconds) * 1e3:.0f} ms",
                  sum(r.values)] for r in ranks]

    lines = [format_table(
        ["trace", "records", "load time", "RSS growth"], load_rows,
        title="Fig. 12a -- trace loading cost (paper: 472 MiB, 95 s total "
              "at 13,813 users / 1.37 M jobs)")]
    lines.append("")
    lines.append(f"Fig. 12b -- activeness evaluation: "
                 f"{eval_timer.elapsed * 1e3:.0f} ms "
                 f"(paper: ~700 ms); purge decisions over "
                 f"{dataset.filesystem.file_count} files: "
                 f"{purge_timer.elapsed * 1e3:.0f} ms "
                 f"(paper: 1-5 s over 1.04 M files)")
    lines.append("")

    # Fig. 12b per-rank split: rank 0 evaluates, every rank decides.  The
    # namespace is advanced through the access trace first so the staleness
    # mix is realistic (the pristine snapshot would be 100 % stale by now).
    from repro.emulation import advance_filesystem
    cfg12b = RetentionConfig()
    fs12 = dataset.fresh_filesystem()
    advance_filesystem(fs12, dataset.accesses, t_c)
    rank_decisions = parallel_purge_decisions(fs12, activeness, cfg12b, t_c,
                                              n_ranks=4)
    lines.append(format_table(
        ["rank", "eval time", "decide time", "files examined", "decisions"],
        [[r.rank, f"{r.eval_seconds * 1e3:.1f} ms",
          f"{r.decide_seconds * 1e3:.1f} ms", r.files_examined,
          len(r.decisions)] for r in rank_decisions],
        title="Fig. 12b -- per-rank evaluation/decision split (paper: main "
              "rank ~700 ms eval, workers microseconds; decisions 1-5 s "
              "accumulated)"))
    lines.append("")
    lines.append(format_table(
        ["rank", "shards", "total scan", "per-shard range", "records"],
        rank_rows,
        title="Fig. 12c/d -- 4-rank sharded snapshot scan"))
    write_result("fig12_performance", "\n".join(lines))

    assert eval_timer.elapsed < 5.0  # "rapidly, within one second" at scale
    assert sum(sum(r.values) for r in ranks) == dataset.filesystem.file_count
    assert (sum(r.files_examined for r in rank_decisions)
            == fs12.file_count)
    # Only rank 0 does evaluation work in the Fig. 12b split.
    assert rank_decisions[0].eval_seconds >= max(
        r.eval_seconds for r in rank_decisions[1:])
