"""Networked-ingest benchmark: socket producers vs file replay.

Measures, on one seeded dataset:

* merged-stream ingest throughput (events/sec) of the multi-tenant
  retention server fed from an in-memory file replay vs. over a Unix
  socket -- with one producer connection and with four concurrent
  producer shards;
* the fleet-sharing overhead: wall time of a four-tenant server (one
  tenant per policy of the retention spectrum) against a single-tenant
  server over the same feed, plus the shared-activeness factor (a
  same-cadence fleet must fold the activeness state once per trigger,
  not once per tenant per trigger).

The single-producer socket run is asserted bit-identical to the file
replay before any number is reported, and the four-tenant run must stay
well under 4x the single-tenant wall time -- the ``--smoke`` run doubles
as the CI sharing gate.  Results go to ``BENCH_net_ingest.json`` at the
repo root (override with ``--out``)::

    PYTHONPATH=src python benchmarks/bench_net_ingest.py
    PYTHONPATH=src python benchmarks/bench_net_ingest.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ONE_TENANT = ("name=activedr,policy=activedr",)
FOUR_TENANTS = ("name=flt,policy=flt", "name=activedr,policy=activedr",
                "name=value,policy=value", "name=cache,policy=cache")


def assert_result_equal(got, want, context):
    assert got.policy == want.policy, context
    assert np.array_equal(got.metrics.accesses, want.metrics.accesses), context
    assert np.array_equal(got.metrics.misses, want.metrics.misses), context
    assert got.reports == want.reports, context
    assert got.final_classes == want.final_classes, context
    assert got.final_total_bytes == want.final_total_bytes, context
    assert got.final_file_count == want.final_file_count, context


def run_bench(n_users: int, seed: int) -> dict:
    from repro.core import JobResidencyIndex
    from repro.emulation import replay_bounds
    from repro.server.ingest import (NetworkEventStream, SocketListener,
                                     publish_events)
    from repro.server.tenants import MultiTenantService, TenantSpec
    from repro.stream import dataset_event_stream
    from repro.synth import TitanConfig, generate_dataset

    t0 = time.perf_counter()
    dataset = generate_dataset(TitanConfig(n_users=n_users, seed=seed))
    generate_seconds = time.perf_counter() - t0

    events = list(dataset_event_stream(dataset))
    n_events = len(events)
    known = [u.uid for u in dataset.users]
    start, end = replay_bounds(dataset)
    residency = JobResidencyIndex(dataset.jobs)

    def make_fleet(spec_texts):
        specs = [TenantSpec.parse(text) for text in spec_texts]
        return MultiTenantService(
            [(s, s.build_policy(residency=residency)) for s in specs],
            snapshot_fs=dataset.filesystem, replay_start=start,
            replay_end=end, known_uids=known)

    # -- file replay baseline: the engine fed straight from memory -----
    service = make_fleet(ONE_TENANT)
    t0 = time.perf_counter()
    file_results = service.run(iter(events))
    file_seconds = time.perf_counter() - t0

    # -- socket ingest: P concurrent producer shards -------------------
    def socket_run(n_producers):
        # Round-robin shards of a sorted list are themselves sorted, so
        # every shard satisfies the per-source monotonicity contract and
        # nothing lands in quarantine.  With one producer the socket
        # order is exactly the file order (bit-identity); with four, the
        # merge may reorder equal-timestamp ties across shards, which is
        # the documented throughput-mode tradeoff.
        shards = [events[i::n_producers] for i in range(n_producers)]
        with tempfile.TemporaryDirectory() as sockdir:
            address = f"unix:{os.path.join(sockdir, 'ingest.sock')}"
            listener = SocketListener(
                address,
                expected={f"shard-{i}": 1 for i in range(n_producers)})
            stream = NetworkEventStream(listener, known_uids=known)
            threads = [
                threading.Thread(
                    target=publish_events,
                    args=(address, f"shard-{i}", shards[i]),
                    kwargs={"producer": f"bench-{i}"}, daemon=True)
                for i in range(n_producers)]
            fleet = make_fleet(ONE_TENANT)
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            results = fleet.run(iter(stream))
            elapsed = time.perf_counter() - t0
            for t in threads:
                t.join()
            listener.close()
        assert fleet.cursor == n_events, (fleet.cursor, n_events)
        assert stream.quarantine.total == 0, stream.quarantine.summary()
        return elapsed, results

    socket_rows = {}
    for n_producers in (1, 4):
        elapsed, results = socket_run(n_producers)
        row = {
            "seconds": round(elapsed, 3),
            "events_per_sec": round(n_events / elapsed),
            "socket_vs_file": round(elapsed / file_seconds, 2),
            "quarantined": 0,
        }
        if n_producers == 1:
            assert_result_equal(results["activedr"],
                                file_results["activedr"], "socket-1")
            row["bit_identical_to_file"] = True
        socket_rows[str(n_producers)] = row

    # -- fleet overhead: 4 tenants sharing one feed and one activeness -
    def best_of(spec_texts, repeats=2):
        best = fleet = None
        for _ in range(repeats):
            fleet = make_fleet(spec_texts)
            t0 = time.perf_counter()
            fleet.run(iter(events))
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        return best, fleet

    one_seconds, one = best_of(ONE_TENANT)
    four_seconds, four = best_of(FOUR_TENANTS)

    overhead = four_seconds / one_seconds
    evals_one = one.stats["activeness_evals"]
    evals_four = four.stats["activeness_evals"]
    # Same cadence everywhere: the fleet folds once per trigger, so the
    # evaluation count must not scale with the tenant count at all.
    assert evals_four == evals_one, (evals_four, evals_one)
    assert overhead < 4.0, f"4-tenant overhead {overhead:.2f}x"

    return {
        "benchmark": "net_ingest",
        "dataset": {
            "n_users": n_users,
            "seed": seed,
            "snapshot_files": dataset.filesystem.file_count,
            "merged_events": n_events,
            "generate_seconds": round(generate_seconds, 3),
        },
        "ingest": {
            "file": {
                "seconds": round(file_seconds, 3),
                "events_per_sec": round(n_events / file_seconds),
            },
            "socket_by_producers": socket_rows,
        },
        "fleet_overhead": {
            "one_tenant_seconds": round(one_seconds, 3),
            "four_tenant_seconds": round(four_seconds, 3),
            "overhead_x": round(overhead, 2),
            "activeness_evals_one_tenant": evals_one,
            "activeness_evals_four_tenants": evals_four,
            "evals_shared": True,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=300,
                        help="synthetic user count (default: the seeded "
                             "dataset the acceptance numbers quote)")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_net_ingest.json"))
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI-sized run; does not overwrite the "
                             "committed JSON unless --out is given")
    args = parser.parse_args(argv)

    if args.smoke:
        # Below ~100 users the fixed per-tenant boundary work dominates
        # the shared per-event work and the 4x gate is meaningless; 150
        # is the smallest scale where sharing is visible.
        args.users = 150
        if args.out == os.path.join(REPO_ROOT, "BENCH_net_ingest.json"):
            args.out = os.path.join(REPO_ROOT, "BENCH_net_ingest.smoke.json")

    result = run_bench(args.users, args.seed)
    result["smoke"] = args.smoke

    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")

    data = result["dataset"]
    print(f"dataset: {data['n_users']} users, "
          f"{data['merged_events']} merged events")
    file_row = result["ingest"]["file"]
    print(f"  file replay: {file_row['seconds']}s "
          f"({file_row['events_per_sec']} ev/s)")
    for count, row in result["ingest"]["socket_by_producers"].items():
        suffix = (" bit-identical to file"
                  if row.get("bit_identical_to_file") else "")
        print(f"  socket x{count}: {row['seconds']}s "
              f"({row['events_per_sec']} ev/s, "
              f"{row['socket_vs_file']}x file){suffix}")
    fleet = result["fleet_overhead"]
    print(f"  fleet: 4 tenants at {fleet['overhead_x']}x one tenant "
          f"({fleet['activeness_evals_four_tenants']} activeness evals, "
          f"shared)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
