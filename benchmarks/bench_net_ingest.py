"""Networked-ingest benchmark: socket producers vs file replay.

Measures, on one seeded dataset:

* merged-stream ingest throughput (events/sec) of the multi-tenant
  retention server fed from an in-memory file replay vs. over a Unix
  socket, for both wire protocols -- v1 JSON-per-event frames and the
  negotiated v2 binary columnar batch frames -- each with one producer
  connection and with four concurrent producer shards.  Socket rows use
  the standard load-generator methodology (iperf/wrk style): producers
  pre-encode their wire bytes *outside* the timed window and then blast
  them down the socket, so the clock measures the server's ingest
  capacity -- accept, decode, validate, merge, retention engine -- and
  not the generator's encode speed.  Producer-side encode cost is
  measured separately and reported as ``producer_encode`` per protocol;
* per-batch decode latency and per-trigger latency tails (p50/p95/p99)
  on the binary path;
* binary-path crash fidelity: a four-tenant server is stopped mid-feed,
  resumed from its newest checkpoint, re-fed over fresh binary
  connections, and every tenant's final state is asserted bit-identical
  to the uninterrupted file replay; the crash fleet also carries a
  :class:`MetricsHistory`, so the run reports how many per-boundary
  samples were rewound on resume and the latency of rendering the full
  Prometheus exposition over the finished fleet;
* the fleet-sharing overhead: wall time of a four-tenant server (one
  tenant per policy of the retention spectrum) against a single-tenant
  server over the same feed, plus the shared-activeness factor (a
  same-cadence fleet must fold the activeness state once per trigger,
  not once per tenant per trigger).

Single-producer socket runs are asserted bit-identical to the file
replay before any number is reported; the ``--smoke`` run additionally
gates binary x1 >= JSON x1 throughput and the <4x fleet-sharing factor
for CI.  Results go to ``BENCH_net_ingest.json`` at the repo root
(override with ``--out``)::

    PYTHONPATH=src python benchmarks/bench_net_ingest.py
    PYTHONPATH=src python benchmarks/bench_net_ingest.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ONE_TENANT = ("name=activedr,policy=activedr",)
FOUR_TENANTS = ("name=flt,policy=flt", "name=activedr,policy=activedr",
                "name=value,policy=value", "name=cache,policy=cache")


def assert_result_equal(got, want, context):
    assert got.policy == want.policy, context
    assert np.array_equal(got.metrics.accesses, want.metrics.accesses), context
    assert np.array_equal(got.metrics.misses, want.metrics.misses), context
    assert got.reports == want.reports, context
    assert got.final_classes == want.final_classes, context
    assert got.final_total_bytes == want.final_total_bytes, context
    assert got.final_file_count == want.final_file_count, context


def run_bench(n_users: int, seed: int) -> dict:
    from repro.core import JobResidencyIndex
    from repro.emulation import replay_bounds
    from repro.server.admin import _tail_stats
    from repro.server.metrics import MetricsHistory, render_prometheus
    from repro.server.ingest import (DEFAULT_BATCH_EVENTS,
                                     NetworkEventStream, SocketListener,
                                     publish_batches, publish_events)
    from repro.server.protocol import (PROTOCOL_V1, FrameReader,
                                       connect_socket, encode_batch,
                                       encode_event, encode_frame,
                                       write_frame)
    from repro.server.tenants import MultiTenantService, TenantSpec
    from repro.stream import dataset_event_stream, skip_stream_items
    from repro.stream.batch import BatchBuilder
    from repro.synth import TitanConfig, generate_dataset

    t0 = time.perf_counter()
    dataset = generate_dataset(TitanConfig(n_users=n_users, seed=seed))
    generate_seconds = time.perf_counter() - t0

    events = list(dataset_event_stream(dataset))
    n_events = len(events)
    known = [u.uid for u in dataset.users]
    start, end = replay_bounds(dataset)
    residency = JobResidencyIndex(dataset.jobs)

    def make_fleet(spec_texts, **kwargs):
        specs = [TenantSpec.parse(text) for text in spec_texts]
        return MultiTenantService(
            [(s, s.build_policy(residency=residency)) for s in specs],
            snapshot_fs=dataset.filesystem, replay_start=start,
            replay_end=end, known_uids=known,
            policy_factory=lambda s: s.build_policy(residency=residency),
            **kwargs)

    # Scheduler noise on a shared box swings single runs by ~15%, which
    # is larger than the socket-vs-file margin under test, so every
    # throughput row reports the best of REPEATS runs.
    REPEATS = 3

    # -- file replay baseline: the engine fed straight from memory -----
    file_seconds = file_results = None
    for _ in range(REPEATS):
        service = make_fleet(ONE_TENANT)
        t0 = time.perf_counter()
        results = service.run(iter(events))
        elapsed = time.perf_counter() - t0
        if file_seconds is None or elapsed < file_seconds:
            file_seconds, file_results = elapsed, results

    # -- socket ingest: P concurrent producer shards -------------------
    def shard(n_producers, contiguous):
        # Both shard styles keep every shard internally time-sorted (any
        # subsequence of a sorted list is sorted), satisfying the
        # per-source monotonicity contract, so nothing lands in
        # quarantine.  The JSON path keeps round-robin shards
        # (fine-grained interleave); the binary path uses contiguous
        # chunks, whose merge runs span whole batches instead of
        # degenerating to single-row ping-pong between sources.
        if contiguous:
            return [events[i * n_events // n_producers:
                           (i + 1) * n_events // n_producers]
                    for i in range(n_producers)]
        return [events[i::n_producers] for i in range(n_producers)]

    # -- producer-side pre-encode (untimed by the ingest clock) --------
    def preencode_binary(shards):
        t0 = time.perf_counter()
        per_shard = []
        for rows in shards:
            frames = []
            for i in range(0, len(rows), DEFAULT_BATCH_EVENTS):
                builder = BatchBuilder()
                builder.extend(rows[i:i + DEFAULT_BATCH_EVENTS])
                frames.append(encode_batch(builder.build()))
            per_shard.append(frames)
        return per_shard, time.perf_counter() - t0

    def preencode_json(shards):
        t0 = time.perf_counter()
        per_shard = []
        for rows in shards:
            chunks, buf = [], bytearray()
            for ev in rows:
                buf += encode_frame(encode_event(ev))
                if len(buf) >= 1 << 18:
                    chunks.append(bytes(buf))
                    buf = bytearray()
            if buf:
                chunks.append(bytes(buf))
            per_shard.append(chunks)
        return per_shard, time.perf_counter() - t0

    def blast_json(address, source, chunks):
        # The v1 twin of publish_batches: pipelined hello, pre-encoded
        # event frames sent as raw byte chunks, acks collected last.
        sock = connect_socket(address, timeout=10.0)
        try:
            reader = FrameReader(sock)
            write_frame(sock, {"type": "hello", "source": source,
                               "producer": "bench",
                               "protocol": PROTOCOL_V1})
            sock.settimeout(None)
            try:
                for chunk in chunks:
                    sock.sendall(chunk)
                write_frame(sock, {"type": "end"})
            except OSError:
                pass
            for _ in ("hello", "end"):
                ack = reader.read_message()
                assert ack is not None and ack.get("type") == "ok", ack
        finally:
            sock.close()

    def socket_run(per_shard, *, binary):
        # With one producer the socket order is exactly the file order
        # (bit-identity); with four, the merge may reorder
        # equal-timestamp ties across shards, which is the documented
        # throughput-mode tradeoff.
        n_producers = len(per_shard)
        with tempfile.TemporaryDirectory() as sockdir:
            address = f"unix:{os.path.join(sockdir, 'ingest.sock')}"
            listener = SocketListener(
                address,
                expected={f"shard-{i}": 1 for i in range(n_producers)})
            stream = NetworkEventStream(listener, known_uids=known)
            if binary:
                threads = [
                    threading.Thread(
                        target=publish_batches,
                        args=(address, f"shard-{i}", per_shard[i]),
                        kwargs={"producer": f"bench-{i}"}, daemon=True)
                    for i in range(n_producers)]
            else:
                threads = [
                    threading.Thread(
                        target=blast_json,
                        args=(address, f"shard-{i}", per_shard[i]),
                        daemon=True)
                    for i in range(n_producers)]
            fleet = make_fleet(ONE_TENANT)
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            results = fleet.run(iter(stream))
            elapsed = time.perf_counter() - t0
            for t in threads:
                t.join()
            decode = _tail_stats(listener.decode_seconds)
            listener.close()
        assert fleet.cursor == n_events, (fleet.cursor, n_events)
        assert stream.quarantine.total == 0, stream.quarantine.summary()
        return elapsed, results, fleet, decode

    def socket_rows(*, binary):
        rows, extras = {}, {}
        label = "binary" if binary else "json"
        preencode = preencode_binary if binary else preencode_json
        for n_producers in (1, 4):
            per_shard, encode_seconds = preencode(
                shard(n_producers, contiguous=binary))
            if n_producers == 1:
                extras["producer_encode"] = {
                    "seconds": round(encode_seconds, 3),
                    "events_per_sec": round(n_events / encode_seconds),
                }
            elapsed = results = fleet = decode = None
            for _ in range(REPEATS):
                run = socket_run(per_shard, binary=binary)
                if elapsed is None or run[0] < elapsed:
                    elapsed, results, fleet, decode = run
            row = {
                "seconds": round(elapsed, 3),
                "events_per_sec": round(n_events / elapsed),
                "socket_vs_file": round(elapsed / file_seconds, 2),
                "quarantined": 0,
            }
            if n_producers == 1:
                assert_result_equal(results["activedr"],
                                    file_results["activedr"],
                                    f"socket-1-{label}")
                row["bit_identical_to_file"] = True
                if binary:
                    extras["decode_latency"] = decode
                    extras["trigger_latency"] = _tail_stats(
                        [s for t in fleet.tenants
                         for s in t.trigger_latency_log])
            rows[str(n_producers)] = row
        return rows, extras

    json_rows, json_extras = socket_rows(binary=False)
    binary_rows, binary_extras = socket_rows(binary=True)

    # -- chaos: what exactly-once costs and buys -----------------------
    # (a) clean-path sequencing/dedupe overhead: the same pre-encoded
    # single-producer binary feed, with and without explicit sequence
    # numbers in the frames (the sequenced frames exercise the header
    # parse + contiguity/dedupe check on every batch);
    # (b) reconnect-recovery latency: one producer streams the full
    # feed through a fault proxy that severs the connection at six
    # scripted byte offsets; each failure->next-successful-handshake
    # latency is a recovery sample.
    from repro.faults import ChaosProxy, FaultPlan
    from repro.stream.batch import BatchRun

    def preencode_binary_seq(shards):
        per_shard = []
        for rows in shards:
            frames, seq = [], 1
            for i in range(0, len(rows), DEFAULT_BATCH_EVENTS):
                builder = BatchBuilder()
                builder.extend(rows[i:i + DEFAULT_BATCH_EVENTS])
                frames.append(encode_batch(builder.build(), seq=seq))
                seq += len(builder)
            per_shard.append(frames)
        return per_shard

    plain_shard = shard(1, contiguous=True)
    noseq_frames, _ = preencode_binary(plain_shard)
    seq_frames = preencode_binary_seq(plain_shard)
    noseq_seconds = seq_seconds = None
    for _ in range(REPEATS):
        elapsed = socket_run(noseq_frames, binary=True)[0]
        noseq_seconds = (elapsed if noseq_seconds is None
                         else min(noseq_seconds, elapsed))
        elapsed = socket_run(seq_frames, binary=True)[0]
        seq_seconds = (elapsed if seq_seconds is None
                       else min(seq_seconds, elapsed))
    seq_overhead = seq_seconds / noseq_seconds

    total_wire = sum(len(f) + 16 for f in seq_frames[0])
    sever_plan = FaultPlan(
        [{"target": "net:shard-0", "kind": "sever",
          "at": int(total_wire * frac) + 13}
         for frac in (0.1, 0.25, 0.4, 0.55, 0.7, 0.85)], seed=9)
    with tempfile.TemporaryDirectory() as sockdir:
        address = f"unix:{os.path.join(sockdir, 'chaos.sock')}"
        listener = SocketListener(address, expected={"shard-0": 1})
        stream = NetworkEventStream(listener, known_uids=known)
        stats: dict = {}
        with ChaosProxy(f"unix:{os.path.join(sockdir, 'proxy.sock')}",
                        address, sever_plan) as proxy:
            publisher = threading.Thread(
                target=publish_events,
                args=(proxy.address, "shard-0", plain_shard[0]),
                kwargs={"retry_for": 120.0, "retry_interval": 0.05,
                        "retry_seed": 17, "stats": stats}, daemon=True)
            publisher.start()
            rows_seen = 0
            for item in stream:
                rows_seen += (item.n_rows
                              if isinstance(item, BatchRun) else 1)
            publisher.join()
            severed = proxy.severed
        listener.close()
    assert rows_seen == n_events, (rows_seen, n_events)
    assert stream.quarantine.total == 0, stream.quarantine.summary()
    recovery = _tail_stats(stats.get("recovery_seconds", []))
    chaos_row = {
        "seq_overhead": {
            "noseq_seconds": round(noseq_seconds, 3),
            "seq_seconds": round(seq_seconds, 3),
            "overhead_x": round(seq_overhead, 3),
        },
        "reconnect_recovery": {
            "severs": severed,
            "reconnect_attempts": stats.get("retries", 0),
            "duplicates_discarded": int(listener.duplicates_discarded),
            "recovery_seconds": recovery,
            "events_exactly_once": True,
        },
    }

    # -- binary-path crash fidelity: stop a four-tenant server mid-feed,
    #    resume from its newest checkpoint, re-feed over fresh binary
    #    connections, and demand bit-identity for every tenant ----------
    four_file_results = make_fleet(FOUR_TENANTS).run(iter(events))

    def quiet_publish(address, name, feed):
        try:
            publish_events(address, name, feed, producer="bench-crash",
                           retry_for=20.0)
        except OSError:
            pass  # the first server dies mid-feed by design

    def binary_feed(address, n_producers=2):
        shards = shard(n_producers, contiguous=True)
        threads = [
            threading.Thread(target=quiet_publish,
                             args=(address, f"shard-{i}", shards[i]),
                             daemon=True)
            for i in range(n_producers)]
        for t in threads:
            t.start()
        return threads

    with tempfile.TemporaryDirectory() as workdir:
        expected = {"shard-0": 1, "shard-1": 1}
        address = f"unix:{os.path.join(workdir, 'crash.sock')}"
        listener = SocketListener(address, expected=expected)
        stream = NetworkEventStream(listener, known_uids=known)
        history = MetricsHistory(os.path.join(workdir, "hist.jsonl"))
        fleet = make_fleet(FOUR_TENANTS,
                           checkpoint_dir=os.path.join(workdir, "ckpt"),
                           checkpoint_every_days=7,
                           metrics_history=history)
        binary_feed(address)
        stopped = fleet.run(iter(stream), stop_after_events=n_events // 2)
        assert stopped is None, "crash run unexpectedly drained the feed"
        listener.close()
        samples_before_crash = history.seq
        history.close()

        newest = fleet.checkpoints.latest()
        assert newest is not None, "no checkpoint written before the stop"
        history = MetricsHistory(os.path.join(workdir, "hist.jsonl"))
        resumed = MultiTenantService.resume(
            newest,
            policy_factory=lambda s: s.build_policy(residency=residency),
            metrics_history=history)
        samples_rewound = samples_before_crash - history.seq
        address = f"unix:{os.path.join(workdir, 'resume.sock')}"
        listener = SocketListener(address, expected=expected)
        stream = NetworkEventStream(listener, known_uids=known)
        threads = binary_feed(address)
        resumed_results = resumed.run(
            skip_stream_items(iter(stream), resumed.cursor))
        for t in threads:
            t.join()
        listener.close()

        # -- observability overhead: exposition render latency over the
        #    finished four-tenant fleet with its full history attached --
        render_times = []
        for _ in range(20):
            t0 = time.perf_counter()
            text = render_prometheus(resumed, history=history,
                                     rate=0.0, uptime=1.0)
            render_times.append(time.perf_counter() - t0)
        observability_row = {
            "history_samples_before_crash": samples_before_crash,
            "history_samples_rewound_on_resume": samples_rewound,
            "history_samples_final": history.seq,
            "exposition_bytes": len(text),
            "exposition_render": _tail_stats(render_times),
        }
        history.close()
    assert resumed.cursor == n_events, (resumed.cursor, n_events)
    crash_row = {"stopped_after_events": int(n_events // 2), "tenants": {}}
    for name, want in four_file_results.items():
        assert_result_equal(resumed_results[name], want,
                            f"crash-resume-{name}")
        crash_row["tenants"][name] = {"bit_identical_to_file": True}

    # -- fleet overhead: 4 tenants sharing one feed and one activeness -
    def best_of(spec_texts, repeats=2):
        best = fleet = None
        for _ in range(repeats):
            fleet = make_fleet(spec_texts)
            t0 = time.perf_counter()
            fleet.run(iter(events))
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        return best, fleet

    one_seconds, one = best_of(ONE_TENANT)
    four_seconds, four = best_of(FOUR_TENANTS)

    overhead = four_seconds / one_seconds
    evals_one = one.stats["activeness_evals"]
    evals_four = four.stats["activeness_evals"]
    # Same cadence everywhere: the fleet folds once per trigger, so the
    # evaluation count must not scale with the tenant count at all.
    assert evals_four == evals_one, (evals_four, evals_one)
    assert overhead < 4.0, f"4-tenant overhead {overhead:.2f}x"

    return {
        "benchmark": "net_ingest",
        "dataset": {
            "n_users": n_users,
            "seed": seed,
            "snapshot_files": dataset.filesystem.file_count,
            "merged_events": n_events,
            "generate_seconds": round(generate_seconds, 3),
        },
        "ingest": {
            "file": {
                "seconds": round(file_seconds, 3),
                "events_per_sec": round(n_events / file_seconds),
            },
            "socket_by_producers": json_rows,
            "producer_encode": {
                "json": json_extras["producer_encode"],
                "binary": binary_extras.pop("producer_encode"),
            },
            "binary": {
                "batch_events": DEFAULT_BATCH_EVENTS,
                "socket_by_producers": binary_rows,
                "crash_resume": crash_row,
                **binary_extras,
            },
        },
        "chaos": chaos_row,
        "observability": observability_row,
        "fleet_overhead": {
            "one_tenant_seconds": round(one_seconds, 3),
            "four_tenant_seconds": round(four_seconds, 3),
            "overhead_x": round(overhead, 2),
            "activeness_evals_one_tenant": evals_one,
            "activeness_evals_four_tenants": evals_four,
            "evals_shared": True,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=300,
                        help="synthetic user count (default: the seeded "
                             "dataset the acceptance numbers quote)")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_net_ingest.json"))
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI-sized run; does not overwrite the "
                             "committed JSON unless --out is given")
    args = parser.parse_args(argv)

    if args.smoke:
        # Below ~100 users the fixed per-tenant boundary work dominates
        # the shared per-event work and the 4x gate is meaningless; 150
        # is the smallest scale where sharing is visible.
        args.users = 150
        if args.out == os.path.join(REPO_ROOT, "BENCH_net_ingest.json"):
            args.out = os.path.join(REPO_ROOT, "BENCH_net_ingest.smoke.json")

    result = run_bench(args.users, args.seed)
    result["smoke"] = args.smoke

    if args.smoke:
        # CI gate: the negotiated binary path must never be slower than
        # the v1 JSON framing it replaced as the default.
        json_x1 = result["ingest"]["socket_by_producers"]["1"]
        bin_x1 = result["ingest"]["binary"]["socket_by_producers"]["1"]
        assert bin_x1["events_per_sec"] >= json_x1["events_per_sec"], (
            f"binary x1 {bin_x1['events_per_sec']} ev/s slower than "
            f"JSON x1 {json_x1['events_per_sec']} ev/s")
        # CI gate: explicit sequencing + edge dedupe must stay in the
        # noise on the clean path (the committed full-size run holds
        # the tighter <=5% figure; smoke runs get a scheduler margin).
        overhead = result["chaos"]["seq_overhead"]["overhead_x"]
        assert overhead <= 1.10, (
            f"sequencing overhead {overhead}x on the clean path")

    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")

    data = result["dataset"]
    print(f"dataset: {data['n_users']} users, "
          f"{data['merged_events']} merged events")
    file_row = result["ingest"]["file"]
    print(f"  file replay: {file_row['seconds']}s "
          f"({file_row['events_per_sec']} ev/s)")
    for count, row in result["ingest"]["socket_by_producers"].items():
        suffix = (" bit-identical to file"
                  if row.get("bit_identical_to_file") else "")
        print(f"  socket x{count} (json): {row['seconds']}s "
              f"({row['events_per_sec']} ev/s, "
              f"{row['socket_vs_file']}x file){suffix}")
    binary = result["ingest"]["binary"]
    for count, row in binary["socket_by_producers"].items():
        suffix = (" bit-identical to file"
                  if row.get("bit_identical_to_file") else "")
        print(f"  socket x{count} (binary): {row['seconds']}s "
              f"({row['events_per_sec']} ev/s, "
              f"{row['socket_vs_file']}x file){suffix}")
    encode = result["ingest"]["producer_encode"]
    print(f"  producer encode: json {encode['json']['events_per_sec']} "
          f"ev/s, binary {encode['binary']['events_per_sec']} ev/s "
          f"(untimed by the ingest clock)")
    decode = binary.get("decode_latency", {})
    if decode.get("count"):
        print(f"  binary decode: p50 {decode['p50'] * 1e6:.0f}us "
              f"p99 {decode['p99'] * 1e6:.0f}us over {decode['count']} "
              f"batches")
    crash = binary["crash_resume"]
    print(f"  crash resume: {len(crash['tenants'])} tenants bit-identical "
          f"after stop at event {crash['stopped_after_events']}")
    chaos = result["chaos"]
    rec = chaos["reconnect_recovery"]
    tail = rec["recovery_seconds"]
    print(f"  chaos: sequencing overhead "
          f"{chaos['seq_overhead']['overhead_x']}x clean path; "
          f"{rec['severs']} severs recovered in "
          f"p50 {tail.get('p50', 0) * 1e3:.0f}ms "
          f"p95 {tail.get('p95', 0) * 1e3:.0f}ms "
          f"p99 {tail.get('p99', 0) * 1e3:.0f}ms, exactly once")
    obs = result["observability"]
    render = obs["exposition_render"]
    print(f"  observability: {obs['history_samples_final']} history "
          f"samples ({obs['history_samples_rewound_on_resume']} rewound "
          f"on resume), /metrics render p50 {render['p50'] * 1e3:.1f}ms "
          f"over {obs['exposition_bytes']} bytes")
    fleet = result["fleet_overhead"]
    print(f"  fleet: 4 tenants at {fleet['overhead_x']}x one tenant "
          f"({fleet['activeness_evals_four_tenants']} activeness evals, "
          f"shared)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
