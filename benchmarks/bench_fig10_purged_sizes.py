"""Fig. 10 + Table 6 -- total purged bytes per group per lifetime.

Paper: on the same snapshot under the same target, ActiveDR purges
*fewer* bytes from every active group (Table 6's positive differences for
actives) and at least as much from both-inactive users; the per-group
purge differences mirror the retained-size differences of Table 5,
because both policies start from the same snapshot state.

The bench prints the purged-bytes table, verifies the Table 5/6 mirror
identity on our data, and times a targeted FLT pass.
"""

from repro.analysis import format_bytes, format_table
from repro.core import FixedLifetimePolicy, RetentionConfig, UserClass
from repro.emulation import ACTIVEDR, FLT

from conftest import SWEEP_LIFETIMES, write_result

GROUPS = (UserClass.BOTH_ACTIVE, UserClass.OPERATION_ACTIVE_ONLY,
          UserClass.OUTCOME_ACTIVE_ONLY, UserClass.BOTH_INACTIVE)


def test_fig10_table6_purged(benchmark, dataset, snapshot_reports):
    t_c = dataset.config.replay_start

    def flt_pass():
        fs = dataset.fresh_filesystem()
        return FixedLifetimePolicy(RetentionConfig(),
                                   enforce_target=True).run(fs, t_c)

    benchmark.pedantic(flt_pass, rounds=3, iterations=1)

    fig10_rows, t6_rows = [], []
    for lifetime in SWEEP_LIFETIMES:
        reports = snapshot_reports[lifetime]
        flt_rep, adr_rep = reports[FLT], reports[ACTIVEDR]
        for group in GROUPS:
            fig10_rows.append([
                f"{lifetime:.0f}d", group.label,
                format_bytes(flt_rep.purged_bytes(group)),
                format_bytes(adr_rep.purged_bytes(group)),
            ])
        t6_rows.append([f"{lifetime:.0f}"] + [
            format_bytes(flt_rep.purged_bytes(g) - adr_rep.purged_bytes(g))
            for g in GROUPS])

    lines = [format_table(
        ["lifetime", "group", "FLT purged", "ActiveDR purged"],
        fig10_rows,
        title="Fig. 10 -- total size of purged files "
              "(same snapshot, same 50% purge target)")]
    lines.append("")
    lines.append(format_table(
        ["period (days)", "both active", "op only", "oc only",
         "both inactive"],
        t6_rows,
        title="Table 6 -- purged-size difference (FLT - ActiveDR); paper: "
              "positive for actives, negative/zero for both-inactive"))
    write_result("fig10_table6_purged", "\n".join(lines))

    for lifetime in SWEEP_LIFETIMES:
        reports = snapshot_reports[lifetime]
        flt_rep, adr_rep = reports[FLT], reports[ACTIVEDR]
        # ActiveDR never out-purges FLT on any active group.
        for group in GROUPS[:3]:
            assert (adr_rep.purged_bytes(group)
                    <= flt_rep.purged_bytes(group)), (lifetime, group)
        # Same initial state => purge difference mirrors retained
        # difference exactly (the paper's Table 5 == Table 6 observation
        # for the active groups).
        for group in GROUPS:
            mirror = ((flt_rep.purged_bytes(group)
                       - adr_rep.purged_bytes(group))
                      - (adr_rep.retained_bytes(group)
                         - flt_rep.retained_bytes(group)))
            assert mirror == 0, (lifetime, group)
