"""Fig. 8 -- statistics on the per-group file-miss reduction ratio.

Paper (means, the green triangles): both-active 37 %, op-active-only
7.5 %, oc-active-only 11.2 %, both-inactive 27.5 %; the both-inactive
group reaches 100 % reduction on some days.

The bench computes the daily reduction-ratio sample per group (days where
FLT missed at least once) and prints the box statistics.  The benchmark
times the statistic computation.
"""

from repro.analysis import box_stats, format_table, percent
from repro.core import UserClass
from repro.emulation import ACTIVEDR, FLT

from conftest import write_result

PAPER_MEANS = {
    UserClass.BOTH_ACTIVE: 0.37,
    UserClass.OPERATION_ACTIVE_ONLY: 0.075,
    UserClass.OUTCOME_ACTIVE_ONLY: 0.112,
    UserClass.BOTH_INACTIVE: 0.275,
}


def test_fig8_reduction_ratio_stats(benchmark, comparison):
    def compute():
        return {g: box_stats(comparison.daily_group_reduction_ratios(g))
                for g in UserClass}

    stats = benchmark(compute)

    rows = []
    for group in UserClass:
        s = stats[group]
        rows.append([group.label, s.count,
                     percent(s.minimum), percent(s.q1), percent(s.median),
                     percent(s.q3), percent(s.maximum),
                     percent(s.mean),
                     percent(PAPER_MEANS[group])])
    write_result("fig08_miss_reduction", format_table(
        ["group", "days", "min", "q1", "median", "q3", "max",
         "mean", "paper mean"],
        rows,
        title="Fig. 8 -- daily per-group file-miss reduction ratio "
              "(ActiveDR vs FLT)"))

    # Direction: the overall inactive-group reduction is positive and the
    # best days see substantial reduction, as in the paper.
    inactive = stats[UserClass.BOTH_INACTIVE]
    assert inactive.mean > 0.0
    assert inactive.maximum > 0.25
    assert comparison.group_miss_reduction(UserClass.BOTH_INACTIVE) > 0.0
