#!/usr/bin/env python
"""Purge-exemption workflow: the reservation contract of section 3.4.

A project keeps irreplaceable observational inputs on scratch.  The
administrator reserves the input directory and two specific result files,
then runs an aggressive retention pass.  The script shows that reserved
paths survive even when the purge target forces ActiveDR through every
retrospective pass -- and that moving a reserved file silently cancels
its reservation.

Run:  python examples/purge_exemption.py
"""

from repro.core import (
    ActiveDRPolicy,
    ExemptionList,
    RetentionConfig,
    UserActiveness,
)
from repro.vfs import DAY_SECONDS, FileMeta, VirtualFileSystem

NOW = 1_467_331_200  # 2016-07-01


def build_scratch() -> VirtualFileSystem:
    fs = VirtualFileSystem()
    layout = {
        "/scratch/astro/inputs/survey-a.fits": 400,
        "/scratch/astro/inputs/survey-b.fits": 400,
        "/scratch/astro/runs/run1.out": 300,
        "/scratch/astro/runs/run2.out": 300,
        "/scratch/astro/results/final.h5": 200,
        "/scratch/astro/results/draft.h5": 200,
    }
    for path, age_days in layout.items():
        atime = NOW - age_days * DAY_SECONDS
        fs.add_file(path, FileMeta(size=1 << 30, atime=atime, mtime=atime,
                                   ctime=atime, uid=101))
    fs.freeze_capacity()
    return fs


def main() -> None:
    fs = build_scratch()
    print(f"Scratch before retention: {fs.file_count} files")

    exemptions = ExemptionList()
    exemptions.reserve_directory("/scratch/astro/inputs")
    exemptions.reserve_file("/scratch/astro/results/final.h5")
    # The user renamed draft.h5 after reserving it -- per the section 3.4
    # contract, the reservation lapses with the old path.
    exemptions.reserve_file("/scratch/astro/results/draft-v1.h5")

    config = RetentionConfig(lifetime_days=90,
                             purge_target_utilization=0.10)
    inactive_owner = {101: UserActiveness(101)}  # no history: initial rank
    report = ActiveDRPolicy(config).run(fs, NOW, activeness=inactive_owner,
                                        exemptions=exemptions)

    print(f"Purged {report.purged_files_total} files "
          f"({report.purged_bytes_total >> 30} GiB); "
          f"target met: {report.target_met}")
    print("\nSurvivors:")
    for path, _ in fs.iter_files():
        marker = "reserved" if path in exemptions else "fresh enough"
        print(f"  {path}  [{marker}]")

    assert "/scratch/astro/inputs/survey-a.fits" in fs
    assert "/scratch/astro/inputs/survey-b.fits" in fs
    assert "/scratch/astro/results/final.h5" in fs
    assert "/scratch/astro/results/draft.h5" not in fs, \
        "renamed file lost its reservation and was purged"
    print("\nReserved inputs and final.h5 survived; the renamed draft "
          "(whose reservation lapsed) was purged.")


if __name__ == "__main__":
    main()
