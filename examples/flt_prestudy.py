#!/usr/bin/env python
"""The paper's motivating pre-study (Fig. 1): how badly does FLT miss?

Section 2 of the paper runs a year-long emulation of plain 90-day FLT
over the OLCF traces and finds users suffering >5 % daily file misses for
almost half the year.  This example reproduces that study shape on a
synthetic workload: replay one year under FLT only, print the daily
miss-ratio distribution, the worst days, and which kind of user got hurt
-- the evidence that motivates activeness-based retention.

Run:  python examples/flt_prestudy.py
"""

import numpy as np

from repro.analysis import (
    days_above,
    days_per_range,
    format_table,
    percent,
    range_labels,
)
from repro.core import FixedLifetimePolicy, RetentionConfig, UserClass
from repro.emulation import Emulator
from repro.synth import TitanConfig, generate_dataset


def main() -> None:
    dataset = generate_dataset(TitanConfig(n_users=300, seed=17))
    config = RetentionConfig(lifetime_days=90, purge_trigger_days=7)
    emulator = Emulator(FixedLifetimePolicy(config), config.activeness)
    result = emulator.run(dataset.fresh_filesystem(), dataset.accesses,
                          dataset.jobs, dataset.publications,
                          dataset.config.replay_start,
                          dataset.config.replay_end,
                          known_uids=[u.uid for u in dataset.users])

    ratios = result.metrics.miss_ratio()
    print(format_table(
        ["miss-ratio range", "days"],
        list(zip(range_labels(), days_per_range(ratios))),
        title="Fig. 1-style pre-study: 90-day FLT, 7-day trigger, one year"))

    print(f"\ndays with >5% file misses: {days_above(ratios, 0.05)} "
          f"of {result.metrics.n_days} "
          f"(the paper found 138 of 366 on the real traces)")
    worst = int(np.argmax(ratios))
    print(f"worst day: day {worst} at {percent(float(ratios[worst]))} "
          f"({int(result.metrics.misses[worst])} of "
          f"{int(result.metrics.accesses[worst])} accesses missed)")

    print("\nmisses by user group (classified at the weekly triggers):")
    for group in UserClass:
        print(f"  {group.label:24s} "
              f"{result.metrics.total_group_misses(group)}")
    print("\nEvery one of these misses is a user finding their file gone --"
          "\nre-transmission or regeneration, hours to days of delay.")


if __name__ == "__main__":
    main()
