#!/usr/bin/env python
"""Operations scenario: ActiveDR as a weekly production purge service.

Simulates how a storage team would actually run ActiveDR week over week:

1. new scheduler and publication records are *appended* to a columnar
   activity store (no re-parsing of two years of logs);
2. at each Sunday trigger, the store evaluates every user's activeness in
   milliseconds;
3. purge decisions are computed across 4 parallel ranks (the paper's
   Fig. 12b division of labour) and applied in scan-priority order up to
   the utilization target;
4. unmet targets raise administrator alerts through the notifier.

Run:  python examples/weekly_operations.py
"""

from repro.analysis import format_bytes, format_table
from repro.core import (
    ActiveDRPolicy,
    CollectingNotifier,
    ColumnarActivityStore,
    RetentionConfig,
    UserClass,
    classify_all,
    group_counts,
)
from repro.parallel import parallel_purge_decisions
from repro.parallel.probes import Timer
from repro.synth import TitanConfig, generate_dataset
from repro.vfs import DAY_SECONDS


def main() -> None:
    dataset = generate_dataset(TitanConfig(n_users=250, seed=31))
    fs = dataset.fresh_filesystem()
    config = RetentionConfig(purge_target_utilization=0.5)
    notifier = CollectingNotifier()
    policy = ActiveDRPolicy(config, notifier=notifier)

    store = ColumnarActivityStore()
    # Bootstrap with pre-replay history; the weekly loop appends the rest.
    history_jobs = [j for j in dataset.jobs
                    if j.submit_ts < dataset.config.replay_start]
    store.ingest_jobs(history_jobs)
    store.ingest_publications(
        [p for p in dataset.publications
         if p.ts < dataset.config.replay_start])
    pending_jobs = [j for j in dataset.jobs
                    if j.submit_ts >= dataset.config.replay_start]
    pending_pubs = [p for p in dataset.publications
                    if p.ts >= dataset.config.replay_start]

    known = [u.uid for u in dataset.users]
    rows = []
    for week in range(8):
        t_c = dataset.config.replay_start + (week + 1) * 7 * DAY_SECONDS

        # Incremental ingestion: only records since the last trigger.
        new_jobs = [j for j in pending_jobs if j.submit_ts <= t_c]
        pending_jobs = pending_jobs[len(new_jobs):]
        store.ingest_jobs(new_jobs)
        new_pubs = [p for p in pending_pubs if p.ts <= t_c]
        pending_pubs = pending_pubs[len(new_pubs):]
        store.ingest_publications(new_pubs)

        with Timer() as eval_timer:
            activeness = store.evaluate(t_c, config.activeness,
                                        known_uids=known)

        # Fig. 12b-style parallel decision pass (decisions only; the
        # authoritative target-guaranteed purge is the policy run below).
        ranks = parallel_purge_decisions(fs, activeness, config, t_c,
                                         n_ranks=4)
        decision_count = sum(len(r.decisions) for r in ranks)

        with Timer() as purge_timer:
            report = policy.run(fs, t_c, activeness=activeness)

        counts = group_counts(classify_all(activeness))
        rows.append([
            week + 1,
            f"{eval_timer.elapsed * 1e3:.0f} ms",
            decision_count,
            report.purged_files_total,
            format_bytes(report.purged_bytes_total),
            "yes" if report.target_met else "NO",
            counts[UserClass.BOTH_INACTIVE],
        ])

    print(format_table(
        ["week", "eval time", "parallel decisions", "files purged",
         "bytes purged", "target met", "inactive users"],
        rows, title="Eight weeks of ActiveDR purge operations"))

    if notifier.notifications:
        print(f"\n{len(notifier.notifications)} administrator alert(s):")
        for note in notifier.notifications:
            print(f"  t={note.t_c}: {format_bytes(note.shortfall_bytes)} "
                  f"short of target after {note.passes_used} passes")
    else:
        print("\nNo administrator alerts: every weekly target was met.")


if __name__ == "__main__":
    main()
