#!/usr/bin/env python
"""Quickstart: generate a synthetic Titan-style year, run FLT vs ActiveDR.

This is the 60-second tour of the library:

1. generate a synthetic dataset (users, job log, publication list,
   application log, and the snapshot file system);
2. replay the year under the classic fixed-lifetime policy and under
   ActiveDR with a 50 % purge target;
3. print the headline comparison -- total file misses, per-group misses,
   and how much data each policy retained.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_bytes, format_table, percent
from repro.core import UserClass
from repro.emulation import ACTIVEDR, FLT, ComparisonRunner
from repro.synth import TitanConfig, generate_dataset


def main() -> None:
    print("Generating synthetic Titan dataset (400 users, seed 2021)...")
    dataset = generate_dataset(TitanConfig(n_users=400, seed=2021))
    summary = dataset.summary()
    print(f"  users={summary['users']}  jobs={summary['jobs']}  "
          f"pubs={summary['publications']}  accesses={summary['accesses']}")
    print(f"  snapshot: {summary['files']} files, "
          f"{format_bytes(summary['bytes'])} "
          f"(capacity frozen at snapshot usage)")

    print("\nReplaying one year under FLT and ActiveDR "
          "(90-day lifetime, 7-day trigger, 50% purge target)...")
    result = ComparisonRunner(dataset).run()

    flt, adr = result[FLT], result[ACTIVEDR]
    print(f"\nTotal file misses:  FLT={flt.metrics.total_misses}  "
          f"ActiveDR={adr.metrics.total_misses}  "
          f"(reduction {percent(result.miss_reduction())})")

    rows = []
    for group in UserClass:
        rows.append([
            group.label,
            flt.metrics.total_group_misses(group),
            adr.metrics.total_group_misses(group),
            percent(result.group_miss_reduction(group)),
        ])
    print()
    print(format_table(
        ["user group", "FLT misses", "ActiveDR misses", "reduction"], rows))

    print(f"\nData retained at year end:  FLT={format_bytes(flt.final_total_bytes)}"
          f"  ActiveDR={format_bytes(adr.final_total_bytes)}")
    unmet = sum(1 for r in adr.reports if not r.target_met)
    print(f"ActiveDR purge triggers: {len(adr.reports)} "
          f"({unmet} reported an unmet target to the administrator)")


if __name__ == "__main__":
    main()
