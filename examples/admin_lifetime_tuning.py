#!/usr/bin/env python
"""Administrator scenario: tuning the file lifetime for a facility.

An administrator wants to know what each Table 1 facility preset
(NCAR 120 d / OLCF 90 d / TACC 30 d / NERSC 84 d) would do to their users,
and how ActiveDR changes the picture at each lifetime.  The script runs a
single-snapshot retention at a 50 % purge target for every preset and
prints, per user-activeness group, the bytes each policy purged and the
number of users whose files were touched.

Run:  python examples/admin_lifetime_tuning.py
"""

from repro.analysis import format_bytes, format_table
from repro.core import (
    ActiveDRPolicy,
    ActivenessEvaluator,
    ActivityLedger,
    FACILITY_PRESETS,
    FixedLifetimePolicy,
    JOB_SUBMISSION,
    PUBLICATION,
    UserClass,
    activities_from_jobs,
    activities_from_publications,
)
from repro.synth import TitanConfig, generate_dataset


def main() -> None:
    dataset = generate_dataset(TitanConfig(n_users=300, seed=7))
    t_c = dataset.config.replay_start

    # Activity history up to the retention instant.
    ledger = ActivityLedger()
    ledger.extend(JOB_SUBMISSION, activities_from_jobs(dataset.jobs))
    ledger.extend(PUBLICATION,
                  activities_from_publications(dataset.publications))
    ledger = ledger.until(t_c)
    known = [u.uid for u in dataset.users]

    for facility, config in sorted(FACILITY_PRESETS.items()):
        activeness = ActivenessEvaluator(config.activeness).evaluate(
            ledger, t_c, known_uids=known)

        fs_flt = dataset.fresh_filesystem()
        fs_adr = dataset.fresh_filesystem()
        rep_flt = FixedLifetimePolicy(config, enforce_target=True).run(
            fs_flt, t_c, activeness=activeness)
        rep_adr = ActiveDRPolicy(config).run(fs_adr, t_c,
                                             activeness=activeness)

        rows = []
        for group in UserClass:
            rows.append([
                group.label,
                format_bytes(rep_flt.purged_bytes(group)),
                format_bytes(rep_adr.purged_bytes(group)),
                rep_flt.affected_users(group),
                rep_adr.affected_users(group),
            ])
        print()
        print(format_table(
            ["group", "FLT purged", "ActiveDR purged",
             "FLT users hit", "ActiveDR users hit"],
            rows,
            title=(f"{facility} preset: {config.lifetime_days:.0f}-day "
                   f"lifetime, 50% purge target "
                   f"(ActiveDR target met: {rep_adr.target_met})")))


if __name__ == "__main__":
    main()
