#!/usr/bin/env python
"""Custom activity types: the section 5 administrator extension point.

The paper's evaluation uses job submissions (operations) and publications
(outcomes), but the activeness model accepts *any* activity that has a
timestamp and a quantifiable impact (Table 2).  Here an administrator
tracks three operation types -- job submissions, data transfers, and
shell logins -- with different weights, plus dataset generation as an
outcome, and inspects how each user classifies.

Run:  python examples/custom_activity_types.py
"""

from repro.analysis import format_table
from repro.core import (
    Activity,
    ActivityCategory,
    ActivityLedger,
    ActivityType,
    ActivenessEvaluator,
    ActivenessParams,
    classify,
)

NOW = 1_467_331_200
DAY = 86_400

# Administrator-defined taxonomy: impacts on very different scales are
# normalized through per-type weights.
JOBS = ActivityType("job_submission", ActivityCategory.OPERATION, weight=1.0)
TRANSFERS = ActivityType("data_transfer", ActivityCategory.OPERATION,
                         weight=0.1)   # impact = GiB moved, down-weighted
LOGINS = ActivityType("shell_login", ActivityCategory.OPERATION, weight=5.0)
DATASETS = ActivityType("dataset_generated", ActivityCategory.OUTCOME,
                        weight=1.0)


def main() -> None:
    ledger = ActivityLedger()

    # User 1: computes daily and publishes datasets -- fully active.
    for day in range(14):
        ledger.add(JOBS, Activity(1, NOW - day * DAY, 64.0))
        ledger.add(LOGINS, Activity(1, NOW - day * DAY, 1.0))
    ledger.add(DATASETS, Activity(1, NOW - 2 * DAY, 10.0))

    # User 2: moves a lot of data recently but produced nothing.
    for day in range(0, 14, 2):
        ledger.add(TRANSFERS, Activity(2, NOW - day * DAY, 500.0))

    # User 3: generated one dataset last week, no operations since spring.
    ledger.add(JOBS, Activity(3, NOW - 120 * DAY, 32.0))
    ledger.add(DATASETS, Activity(3, NOW - 5 * DAY, 3.0))

    # User 4: nothing at all (new account).
    evaluator = ActivenessEvaluator(ActivenessParams(period_days=7))
    activeness = evaluator.evaluate(ledger, NOW, known_uids=[1, 2, 3, 4])

    rows = []
    for uid in sorted(activeness):
        ua = activeness[uid]
        rows.append([
            uid,
            f"{ua.op_rank:.3g}" if ua.has_op else "no history",
            f"{ua.oc_rank:.3g}" if ua.has_oc else "no history",
            classify(ua).label,
        ])
    print(format_table(["uid", "Phi_op", "Phi_oc", "classification"], rows,
                       title="Activeness under a custom activity taxonomy"))

    print("\nNotes:")
    print(" - user 2 is operation-active purely through weighted transfers;")
    print(" - user 3's stale job history collapses Phi_op, but last week's")
    print("   dataset keeps them outcome-active;")
    print(" - user 4 has no history: classified inactive, but retention")
    print("   grants the initial file lifetime (new-user rule).")


if __name__ == "__main__":
    main()
