#!/usr/bin/env python
"""Parallel metadata-snapshot scan (the paper's Fig. 12c/d access pattern).

Writes a sharded, gzipped metadata snapshot to a temporary directory --
the on-disk format OLCF uses for Spider -- then scans it with 1, 2, and 4
ranks, printing per-rank shard timings.  With real processes this is the
same embarrassingly parallel structure the paper runs with mpi4py on Cori.

Run:  python examples/parallel_snapshot_scan.py
"""

import tempfile

from repro.analysis import format_table
from repro.parallel import parallel_shard_scan
from repro.synth import FileTreeConfig, TitanConfig, generate_dataset
from repro.vfs import SnapshotRecord, read_shard, shard_paths, write_snapshot


def count_stale(shard_path: str) -> int:
    """Per-shard work: count records older than 90 days at snapshot time."""
    stale = 0
    cutoff = 90 * 86_400
    snapshot_ts = 1_451_260_800  # 2015-12-28
    for record in read_shard(shard_path):
        if snapshot_ts - record.atime > cutoff:
            stale += 1
    return stale


def main() -> None:
    dataset = generate_dataset(TitanConfig(n_users=250, seed=3))

    with tempfile.TemporaryDirectory() as tmp:
        records = (
            SnapshotRecord(path, meta.stripe_count, meta.atime, meta.mtime,
                           meta.ctime, meta.uid)
            for path, meta in dataset.filesystem.iter_files())
        n = write_snapshot(tmp, records, n_shards=8)
        shards = shard_paths(tmp)
        print(f"Wrote snapshot: {n} records across {len(shards)} gzipped "
              f"shards\n")

        for n_ranks in (1, 2, 4):
            results = parallel_shard_scan(shards, count_stale,
                                          n_ranks=n_ranks)
            total_stale = sum(sum(r.values) for r in results)
            rows = [[r.rank, len(r.shard_paths),
                     f"{r.total_seconds * 1e3:.1f} ms",
                     sum(r.values)] for r in results]
            print(format_table(
                ["rank", "shards", "scan time", "stale found"], rows,
                title=f"{n_ranks}-rank scan (total stale: {total_stale})"))
            print()


if __name__ == "__main__":
    main()
