"""Tests for RetentionConfig, facility presets, and RetentionReport."""

import pytest

from repro.core import (
    FACILITY_PRESETS,
    GroupTally,
    RetentionConfig,
    RetentionReport,
    UserClass,
    facility_preset,
)


# ---------------------------------------------------------------- config

def test_config_defaults_match_paper():
    cfg = RetentionConfig()
    assert cfg.lifetime_days == 90.0
    assert cfg.purge_trigger_days == 7
    assert cfg.purge_target_utilization == 0.5
    assert cfg.retrospective_passes == 5
    assert cfg.rank_decay == 0.2


@pytest.mark.parametrize("kwargs", [
    {"lifetime_days": 0},
    {"purge_trigger_days": 0},
    {"purge_target_utilization": 1.5},
    {"purge_target_utilization": -0.1},
    {"retrospective_passes": -1},
    {"rank_decay": 1.0},
])
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        RetentionConfig(**kwargs)


def test_with_lifetime():
    cfg = RetentionConfig().with_lifetime(30)
    assert cfg.lifetime_days == 30
    assert cfg.purge_trigger_days == 7


def test_facility_presets_table1():
    assert FACILITY_PRESETS["NCAR"].lifetime_days == 120.0
    assert FACILITY_PRESETS["OLCF"].lifetime_days == 90.0
    assert FACILITY_PRESETS["TACC"].lifetime_days == 30.0
    assert FACILITY_PRESETS["NERSC"].lifetime_days == 84.0


def test_facility_preset_lookup():
    assert facility_preset("olcf").lifetime_days == 90.0
    with pytest.raises(KeyError):
        facility_preset("SETI")


# ---------------------------------------------------------------- report

def test_report_record_and_totals():
    rep = RetentionReport("X", t_c=0, lifetime_days=90)
    rep.record_purge(UserClass.BOTH_INACTIVE, uid=1, size=100)
    rep.record_purge(UserClass.BOTH_INACTIVE, uid=1, size=50)
    rep.record_purge(UserClass.BOTH_ACTIVE, uid=2, size=10)
    rep.record_retain(UserClass.BOTH_ACTIVE, uid=2, size=999)
    assert rep.purged_bytes_total == 160
    assert rep.purged_files_total == 3
    assert rep.retained_bytes_total == 999
    assert rep.retained_files_total == 1
    assert rep.purged_bytes(UserClass.BOTH_INACTIVE) == 150
    assert rep.affected_users(UserClass.BOTH_INACTIVE) == 1
    assert rep.affected_users(UserClass.BOTH_ACTIVE) == 1
    assert rep.affected_users(UserClass.OUTCOME_ACTIVE_ONLY) == 0


def test_report_merge():
    a = RetentionReport("X", 0, 90)
    b = RetentionReport("X", 0, 90)
    a.record_purge(UserClass.BOTH_INACTIVE, 1, 100)
    b.record_purge(UserClass.BOTH_INACTIVE, 2, 60)
    b.record_retain(UserClass.BOTH_ACTIVE, 3, 40)
    b.target_met = False
    b.passes_used = 3
    a.merge(b)
    assert a.purged_bytes_total == 160
    assert a.affected_users(UserClass.BOTH_INACTIVE) == 2
    assert a.retained_bytes(UserClass.BOTH_ACTIVE) == 40
    assert a.target_met is False
    assert a.passes_used == 3


def test_group_tally_merge():
    a, b = GroupTally(), GroupTally()
    a.purged_files, a.purged_bytes = 2, 20
    b.purged_files, b.purged_bytes = 3, 30
    b.users_purged.add(9)
    a.merge(b)
    assert (a.purged_files, a.purged_bytes) == (5, 50)
    assert a.affected_users == 1


def test_summary_rows_covers_all_groups():
    rep = RetentionReport("X", 0, 90)
    rows = rep.summary_rows()
    assert len(rows) == 4
    assert {r[0] for r in rows} == {c.label for c in UserClass}
