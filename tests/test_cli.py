"""Tests for the command-line interface and the workspace format."""

import json
import os

import pytest

from repro.cli import load_workspace, main, save_workspace
from repro.synth import TitanConfig, generate_dataset


@pytest.fixture(scope="module")
def ws_dir(tmp_path_factory):
    """A small generated workspace shared across CLI tests."""
    directory = str(tmp_path_factory.mktemp("ws"))
    assert main(["generate", "--out", directory, "--users", "50",
                 "--seed", "3"]) == 0
    return directory


# ---------------------------------------------------------------- workspace

def test_workspace_roundtrip(tmp_path):
    dataset = generate_dataset(TitanConfig(n_users=20, seed=9))
    directory = str(tmp_path / "ws")
    save_workspace(dataset, directory, n_shards=2)
    ws = load_workspace(directory)
    assert len(ws.users) == 20
    assert len(ws.jobs) == len(dataset.jobs)
    assert len(ws.accesses) == len(dataset.accesses)
    assert len(ws.publications) == len(dataset.publications)
    # Byte-exact file-system round trip (sizes stored in the snapshot).
    assert ws.filesystem.total_bytes == dataset.filesystem.total_bytes
    assert ws.filesystem.file_count == dataset.filesystem.file_count
    assert ws.filesystem.capacity_bytes == ws.filesystem.total_bytes
    assert ws.replay_start == dataset.config.replay_start
    assert ws.replay_end == dataset.config.replay_end


def test_load_workspace_missing_meta(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_workspace(str(tmp_path))


def test_load_workspace_bad_format(tmp_path):
    (tmp_path / "meta.json").write_text(json.dumps({"format": "other/9"}))
    with pytest.raises(ValueError):
        load_workspace(str(tmp_path))


# ---------------------------------------------------------------- commands

def test_generate_creates_layout(ws_dir):
    for name in ("meta.json", "users.txt.gz", "jobs.txt.gz",
                 "publications.txt.gz", "app_log.txt.gz", "snapshot"):
        assert os.path.exists(os.path.join(ws_dir, name)), name


def test_validate_clean(ws_dir, capsys):
    assert main(["validate", "--workspace", ws_dir]) == 0
    out = capsys.readouterr().out
    assert "all traces valid" in out


def test_evaluate(ws_dir, capsys):
    assert main(["evaluate", "--workspace", ws_dir, "--at-day", "180",
                 "--period-days", "30", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "User activeness at day 180" in out
    assert "Both Inactive" in out
    assert "Top 3 users" in out


def test_retain_activedr(ws_dir, capsys, tmp_path):
    alert_log = str(tmp_path / "alerts.log")
    code = main(["retain", "--workspace", ws_dir, "--advance-days", "120",
                 "--target", "0.5", "--alert-log", alert_log])
    out = capsys.readouterr().out
    assert "policy: ActiveDR" in out
    assert "purge target" in out
    if code == 2:  # unmet target must have produced an alert line
        assert os.path.exists(alert_log)
    else:
        assert code == 0


def test_retain_flt(ws_dir, capsys):
    code = main(["retain", "--workspace", ws_dir, "--policy", "flt",
                 "--lifetime", "30"])
    out = capsys.readouterr().out
    assert "policy: FLT" in out
    assert code in (0, 2)


def test_retain_with_exemptions(ws_dir, capsys, tmp_path):
    ws = load_workspace(ws_dir)
    some_path = next(iter(ws.filesystem.iter_files()))[0]
    listing = tmp_path / "reserved.txt"
    listing.write_text(some_path + "\n")
    code = main(["retain", "--workspace", ws_dir, "--lifetime", "7",
                 "--target", "0.1", "--exempt", str(listing)])
    assert code in (0, 2)
    assert "policy: ActiveDR" in capsys.readouterr().out


def test_replay_single_policy(ws_dir, capsys):
    assert main(["replay", "--workspace", ws_dir, "--policy", "flt"]) == 0
    out = capsys.readouterr().out
    assert "policy: FLT" in out
    assert "file misses" in out


def test_replay_both(ws_dir, capsys):
    assert main(["replay", "--workspace", ws_dir]) == 0
    out = capsys.readouterr().out
    assert "policy: FLT" in out
    assert "policy: ActiveDR" in out
    assert "miss reduction vs FLT" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_calibrate(ws_dir, capsys):
    assert main(["calibrate", "--workspace", ws_dir]) == 0
    out = capsys.readouterr().out
    assert "capacity:" in out
    assert "created volume" in out
    assert "job counts" in out


def test_replay_fast_engine_matches_reference(ws_dir, capsys):
    assert main(["replay", "--workspace", ws_dir, "--engine", "fast"]) == 0
    fast_out = capsys.readouterr().out
    assert main(["replay", "--workspace", ws_dir,
                 "--engine", "reference"]) == 0
    assert capsys.readouterr().out == fast_out


def test_sweep(ws_dir, capsys):
    assert main(["sweep", "--workspace", ws_dir, "--lifetimes", "30,90",
                 "--ranks", "2"]) == 0
    out = capsys.readouterr().out
    assert "Lifetime sweep" in out
    assert "30" in out and "90" in out


def test_replay_value_policy_engines_agree(ws_dir, capsys):
    assert main(["replay", "--workspace", ws_dir, "--policy", "value",
                 "--engine", "fast"]) == 0
    fast_out = capsys.readouterr().out
    assert "policy: ValueBased" in fast_out
    assert main(["replay", "--workspace", ws_dir, "--policy", "value",
                 "--engine", "reference"]) == 0
    assert capsys.readouterr().out == fast_out


def test_replay_cache_policy_engines_agree(ws_dir, capsys):
    assert main(["replay", "--workspace", ws_dir, "--policy", "cache",
                 "--engine", "fast"]) == 0
    fast_out = capsys.readouterr().out
    assert "policy: ScratchAsCache" in fast_out
    assert main(["replay", "--workspace", ws_dir, "--policy", "cache",
                 "--engine", "reference"]) == 0
    assert capsys.readouterr().out == fast_out


def test_replay_both_matches_comparison_runner(ws_dir, capsys):
    """Regression: ``replay --policy both --engine fast`` used to drive
    two standalone FastEmulators that each re-evaluated trigger-time
    activeness; it now routes through the ComparisonRunner.  The printed
    output must equal rendering the runner's results directly."""
    from repro.analysis import percent, render_emulation_summary
    from repro.core import RetentionConfig
    from repro.emulation import ACTIVEDR, FLT, ComparisonRunner

    assert main(["replay", "--workspace", ws_dir, "--engine", "fast"]) == 0
    cli_out = capsys.readouterr().out

    ws = load_workspace(ws_dir)
    comparison = ComparisonRunner(
        ws, RetentionConfig(lifetime_days=90.0,
                            purge_target_utilization=0.5),
        engine="fast").run()
    expected = ""
    for result in comparison.results.values():
        expected += render_emulation_summary(result) + "\n\n"
    flt_m = comparison.total_misses(FLT)
    adr_m = comparison.total_misses(ACTIVEDR)
    expected += (f"ActiveDR miss reduction vs FLT: "
                 f"{percent(1.0 - adr_m / flt_m)}\n")
    assert cli_out == expected


def test_replay_spectrum(ws_dir, capsys):
    assert main(["replay", "--workspace", ws_dir, "--policy", "spectrum",
                 "--engine", "fast"]) == 0
    out = capsys.readouterr().out
    for name in ("FLT", "ActiveDR", "ValueBased", "ScratchAsCache"):
        assert f"policy: {name}" in out
    assert "miss reduction vs FLT" in out


def test_sweep_spectrum_columns(ws_dir, capsys):
    assert main(["sweep", "--workspace", ws_dir, "--lifetimes", "90",
                 "--spectrum"]) == 0
    out = capsys.readouterr().out
    assert "ValueBased misses" in out
    assert "Cache misses" in out
