"""Tests for trace validation, the admin notifier, and report rendering."""

import logging

import pytest

from repro.analysis.reportgen import (
    render_emulation_summary,
    render_retention_report,
)
from repro.core import (
    ActiveDRPolicy,
    RetentionConfig,
    RetentionReport,
    UserActiveness,
    UserClass,
)
from repro.core.notify import (
    CollectingNotifier,
    FileNotifier,
    LoggingNotifier,
    Notification,
    notification_from_report,
    render_notification,
)
from repro.traces import (
    AppAccessRecord,
    JobRecord,
    PublicationRecord,
    UserRecord,
)
from repro.traces.validate import (
    validate_app_log,
    validate_dataset,
    validate_jobs,
    validate_publications,
    validate_users,
)

from conftest import NOW, make_fs

USERS = [UserRecord(1, "a", 0), UserRecord(2, "b", 0)]


# ---------------------------------------------------------------- validation

def test_validate_users_clean():
    assert validate_users(USERS) == []


def test_validate_users_duplicates():
    issues = validate_users([UserRecord(1, "a", 0), UserRecord(1, "a", 0)])
    severities = {i.severity for i in issues}
    assert "error" in severities and "warning" in severities


def test_validate_jobs_unknown_uid_and_order():
    jobs = [JobRecord(1, 9, 100, 100, 200, 1),
            JobRecord(2, 1, 50, 50, 60, 1)]
    issues = validate_jobs(jobs, USERS)
    messages = " ".join(i.message for i in issues)
    assert "unknown uid 9" in messages
    assert "out of order" in messages


def test_validate_jobs_duplicate_id():
    jobs = [JobRecord(1, 1, 0, 0, 10, 1), JobRecord(1, 1, 5, 5, 10, 1)]
    issues = validate_jobs(jobs, USERS)
    assert any("duplicate job_id" in i.message for i in issues)


def test_validate_jobs_unsorted_allowed():
    jobs = [JobRecord(1, 1, 100, 100, 200, 1),
            JobRecord(2, 1, 50, 50, 60, 1)]
    assert validate_jobs(jobs, USERS, require_sorted=False) == []


def test_validate_app_log():
    recs = [AppAccessRecord(10, 1, "relative/path"),
            AppAccessRecord(5, 9, "/ok/path")]
    issues = validate_app_log(recs, USERS)
    messages = " ".join(i.message for i in issues)
    assert "relative path" in messages
    assert "unknown uid 9" in messages
    assert "out of order" in messages


def test_validate_publications():
    pubs = [PublicationRecord(1, 0, [1, 9], 0),
            PublicationRecord(1, 0, [], 0)]
    issues = validate_publications(pubs, USERS)
    messages = " ".join(i.message for i in issues)
    assert "unknown author 9" in messages
    assert "no authors" in messages
    assert "duplicate pub_id" in messages


def test_validate_dataset_clean_passes():
    jobs = [JobRecord(1, 1, 0, 0, 10, 1)]
    accesses = [AppAccessRecord(0, 2, "/x")]
    pubs = [PublicationRecord(1, 0, [1], 0)]
    assert validate_dataset(USERS, jobs, accesses, pubs) == []


def test_issue_str():
    issues = validate_users([UserRecord(1, "a", 0), UserRecord(1, "b", 0)])
    assert str(issues[0]).startswith("[error] users:")


# ---------------------------------------------------------------- notifier

def _unmet_report():
    rep = RetentionReport("ActiveDR", t_c=NOW, lifetime_days=90,
                          target_bytes=1000)
    rep.record_purge(UserClass.BOTH_INACTIVE, 1, 400)
    rep.target_met = False
    rep.passes_used = 6
    return rep


def test_notification_from_report():
    note = notification_from_report(_unmet_report())
    assert note.shortfall_bytes == 600
    assert note.passes_used == 6
    assert "600 short" in render_notification(note)


def test_collecting_notifier():
    notifier = CollectingNotifier()
    notifier.notify(notification_from_report(_unmet_report()))
    assert len(notifier) == 1


def test_file_notifier(tmp_path):
    path = str(tmp_path / "alerts.log")
    notifier = FileNotifier(path)
    notifier.notify(notification_from_report(_unmet_report()))
    notifier.notify(notification_from_report(_unmet_report()))
    lines = open(path).read().strip().splitlines()
    assert len(lines) == 2
    assert "administrator action required" in lines[0]


def test_logging_notifier(caplog):
    notifier = LoggingNotifier(logging.getLogger("test.retention"))
    with caplog.at_level(logging.WARNING, logger="test.retention"):
        notifier.notify(notification_from_report(_unmet_report()))
    assert any("purge target unmet" in rec.message for rec in caplog.records)


def test_policy_fires_notifier_on_unmet_target():
    # Fresh files only: the target cannot be met.
    fs = make_fs([(f"/s/u/f{i}", 1, 100, 5) for i in range(10)])
    notifier = CollectingNotifier()
    policy = ActiveDRPolicy(RetentionConfig(), notifier=notifier)
    report = policy.run(fs, NOW, activeness={1: UserActiveness(1)})
    assert report.target_met is False
    assert len(notifier) == 1
    assert notifier.notifications[0].purged_bytes == 0


def test_policy_silent_when_target_met():
    fs = make_fs([(f"/s/u/f{i}", 1, 100, 365) for i in range(10)])
    notifier = CollectingNotifier()
    policy = ActiveDRPolicy(RetentionConfig(), notifier=notifier)
    report = policy.run(fs, NOW, activeness={1: UserActiveness(1)})
    assert report.target_met is True
    assert len(notifier) == 0


# ---------------------------------------------------------------- reportgen

def test_render_retention_report():
    text = render_retention_report(_unmet_report())
    assert "policy: ActiveDR" in text
    assert "NOT MET" in text
    assert "Both Inactive" in text
    assert "400.00 B" in text


def test_render_retention_report_no_target():
    rep = RetentionReport("FLT", t_c=NOW, lifetime_days=30)
    text = render_retention_report(rep)
    assert "purge target: none" in text


def test_render_emulation_summary(tiny_dataset):
    from repro.emulation import ComparisonRunner, FLT
    result = ComparisonRunner(tiny_dataset).run()[FLT]
    text = render_emulation_summary(result)
    assert "policy: FLT" in text
    assert "file misses:" in text
    assert "miss-ratio range" in text
