"""Tests for stripe-count size synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vfs import (
    MAX_STRIPE_COUNT,
    MIN_FILE_BYTES,
    STRIPE_CAPACITY_BYTES,
    best_practice_stripe_count,
    synthesize_size,
    synthesize_sizes,
)


def test_small_file_single_stripe():
    assert best_practice_stripe_count(1) == 1
    assert best_practice_stripe_count(STRIPE_CAPACITY_BYTES) == 1


def test_stripe_count_scales_with_size():
    assert best_practice_stripe_count(STRIPE_CAPACITY_BYTES + 1) == 2
    assert best_practice_stripe_count(10 * STRIPE_CAPACITY_BYTES) == 10


def test_stripe_count_capped():
    huge = 10_000 * STRIPE_CAPACITY_BYTES
    assert best_practice_stripe_count(huge) == MAX_STRIPE_COUNT


def test_synthesize_single_stripe_band():
    rng = np.random.default_rng(0)
    sizes = synthesize_sizes(np.ones(500, dtype=np.int64), rng)
    assert (sizes >= MIN_FILE_BYTES).all()
    assert (sizes <= STRIPE_CAPACITY_BYTES).all()


def test_synthesize_multi_stripe_band():
    rng = np.random.default_rng(0)
    counts = np.full(300, 5, dtype=np.int64)
    sizes = synthesize_sizes(counts, rng)
    assert (sizes > 4 * STRIPE_CAPACITY_BYTES).all()
    assert (sizes <= 5 * STRIPE_CAPACITY_BYTES).all()


def test_synthesize_zero_count_treated_as_one():
    rng = np.random.default_rng(0)
    sizes = synthesize_sizes(np.zeros(10, dtype=np.int64), rng)
    assert (sizes <= STRIPE_CAPACITY_BYTES).all()


def test_synthesize_scalar_helper():
    rng = np.random.default_rng(1)
    size = synthesize_size(3, rng)
    assert 2 * STRIPE_CAPACITY_BYTES < size <= 3 * STRIPE_CAPACITY_BYTES


def test_synthesis_deterministic_per_seed():
    a = synthesize_sizes(np.arange(1, 50), np.random.default_rng(42))
    b = synthesize_sizes(np.arange(1, 50), np.random.default_rng(42))
    np.testing.assert_array_equal(a, b)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=MAX_STRIPE_COUNT))
def test_roundtrip_consistency(stripe_count):
    """Synthesized sizes map back to the stripe count they came from."""
    rng = np.random.default_rng(stripe_count)
    size = synthesize_size(stripe_count, rng)
    assert best_practice_stripe_count(size) == stripe_count


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=1 << 45))
def test_best_practice_monotone(size):
    assert (best_practice_stripe_count(size)
            <= best_practice_stripe_count(size + STRIPE_CAPACITY_BYTES))
