"""Tests for the related-work baselines: value-based and scratch-as-a-cache."""

import pytest

from repro.core import RetentionConfig, UserClass
from repro.core.cache_policy import JobResidencyIndex, ScratchAsCachePolicy
from repro.core.value_based import CompositeValueFunction, ValueBasedPolicy
from repro.core.exemption import ExemptionList
from repro.traces import JobRecord
from repro.vfs import DAY_SECONDS

from conftest import NOW, make_fs


# ---------------------------------------------------------------- value fn

def test_value_function_recency_dominates():
    vf = CompositeValueFunction()
    fs = make_fs([("/s/a.h5", 1, 1000, 1), ("/s/b.h5", 1, 1000, 300)])
    fresh = vf("/s/a.h5", fs.stat("/s/a.h5"), NOW)
    stale = vf("/s/b.h5", fs.stat("/s/b.h5"), NOW)
    assert fresh > stale


def test_value_function_small_beats_large():
    vf = CompositeValueFunction(w_recency=0.0, w_type=0.0, w_size=1.0)
    fs = make_fs([("/s/a.h5", 1, 4096, 10), ("/s/b.h5", 1, 1 << 40, 10)])
    assert vf("/s/a.h5", fs.stat("/s/a.h5"), NOW) > \
        vf("/s/b.h5", fs.stat("/s/b.h5"), NOW)


def test_value_function_type_weights():
    vf = CompositeValueFunction(w_recency=0.0, w_size=0.0, w_type=1.0)
    fs = make_fs([("/s/a.h5", 1, 100, 10), ("/s/a.log", 1, 100, 10)])
    assert vf("/s/a.h5", fs.stat("/s/a.h5"), NOW) > \
        vf("/s/a.log", fs.stat("/s/a.log"), NOW)


# ---------------------------------------------------------------- value policy

def test_value_policy_purges_lowest_value_to_target():
    # Equal sizes; ages decide value.  Capacity 400, target 50% -> 200 B.
    fs = make_fs([("/s/old1.log", 1, 100, 300), ("/s/old2.log", 1, 100, 200),
                  ("/s/mid.h5", 1, 100, 50), ("/s/new.h5", 1, 100, 1)])
    cfg = RetentionConfig(purge_target_utilization=0.5)
    report = ValueBasedPolicy(cfg).run(fs, NOW)
    assert report.purged_bytes_total == 200
    assert "/s/old1.log" not in fs and "/s/old2.log" not in fs
    assert "/s/mid.h5" in fs and "/s/new.h5" in fs
    assert report.target_met


def test_value_policy_threshold_mode():
    fs = make_fs([("/s/ancient.log", 1, 100, 1000), ("/s/new.h5", 1, 100, 1)],
                 capacity=0)  # no capacity -> threshold mode
    # ancient.log scores ~0.33 (no recency, small, log-typed); new.h5 ~1.6.
    report = ValueBasedPolicy(RetentionConfig(),
                              value_threshold=0.5).run(fs, NOW)
    assert "/s/ancient.log" not in fs
    assert "/s/new.h5" in fs
    assert report.purged_files_total == 1


def test_value_policy_respects_exemptions():
    fs = make_fs([("/s/keep.log", 1, 100, 1000), ("/s/drop.log", 1, 100, 1000)])
    cfg = RetentionConfig(purge_target_utilization=0.5)
    report = ValueBasedPolicy(cfg).run(
        fs, NOW, exemptions=ExemptionList(paths=["/s/keep.log"]))
    assert "/s/keep.log" in fs
    assert "/s/drop.log" not in fs


def test_value_policy_is_file_centric():
    """Unlike ActiveDR, a very active user's stale file still goes first."""
    from repro.core import UserActiveness
    fs = make_fs([("/s/vip/old.log", 1, 300, 300),
                  ("/s/idle/new.h5", 2, 100, 1)])
    cfg = RetentionConfig(purge_target_utilization=0.5)
    activeness = {1: UserActiveness(1, log_op=50.0, log_oc=50.0,
                                    has_op=True, has_oc=True)}
    report = ValueBasedPolicy(cfg).run(fs, NOW, activeness=activeness)
    assert "/s/vip/old.log" not in fs
    assert report.purged_bytes(UserClass.BOTH_ACTIVE) == 300


# ---------------------------------------------------------------- residency

def _jobs():
    return [
        JobRecord(1, 1, NOW - 3 * DAY_SECONDS, NOW - 2 * DAY_SECONDS,
                  NOW + DAY_SECONDS, 1),             # uid 1: running now
        JobRecord(2, 2, NOW - 30 * DAY_SECONDS, NOW - 29 * DAY_SECONDS,
                  NOW - 28 * DAY_SECONDS, 1),        # uid 2: long done
    ]


def test_residency_index_basic():
    idx = JobResidencyIndex(_jobs(), grace_seconds=0)
    assert idx.is_resident(1, NOW)
    assert not idx.is_resident(2, NOW)
    assert idx.is_resident(2, NOW - 28 * DAY_SECONDS - 100)
    assert not idx.is_resident(99, NOW)
    assert sorted(idx.users()) == [1, 2]


def test_residency_grace_window():
    idx = JobResidencyIndex(_jobs(), grace_seconds=2 * DAY_SECONDS)
    assert idx.is_resident(2, NOW - 26 * DAY_SECONDS - 100)  # inside grace
    assert not idx.is_resident(2, NOW)


def test_residency_merges_overlaps():
    jobs = [JobRecord(1, 1, 0, 0, 100, 1), JobRecord(2, 1, 50, 50, 200, 1)]
    idx = JobResidencyIndex(jobs, grace_seconds=0)
    assert idx.is_resident(1, 150)
    assert not idx.is_resident(1, 201)


def test_residency_rejects_negative_grace():
    with pytest.raises(ValueError):
        JobResidencyIndex([], grace_seconds=-1)


# ---------------------------------------------------------------- cache policy

def test_cache_policy_evicts_non_resident_users():
    fs = make_fs([("/s/u1/a", 1, 100, 50), ("/s/u2/b", 2, 100, 1)])
    idx = JobResidencyIndex(_jobs(), grace_seconds=0)
    policy = ScratchAsCachePolicy(RetentionConfig(), residency=idx)
    report = policy.run(fs, NOW)
    assert "/s/u1/a" in fs       # uid 1 has a running job
    assert "/s/u2/b" not in fs   # uid 2 idle -> evicted even though fresh
    assert report.purged_bytes_total == 100


def test_cache_policy_respects_exemptions():
    fs = make_fs([("/s/u2/a", 2, 100, 1), ("/s/u2/b", 2, 100, 1)])
    idx = JobResidencyIndex(_jobs(), grace_seconds=0)
    policy = ScratchAsCachePolicy(RetentionConfig(), residency=idx)
    policy.run(fs, NOW, exemptions=ExemptionList(paths=["/s/u2/a"]))
    assert "/s/u2/a" in fs and "/s/u2/b" not in fs


def test_cache_policy_is_most_aggressive():
    """On idle users, the cache policy purges strictly more than FLT."""
    from repro.core import FixedLifetimePolicy
    entries = [(f"/s/u2/f{i}", 2, 100, age) for i, age in
               enumerate((1, 30, 60, 120))]
    fs_cache, fs_flt = make_fs(entries), make_fs(entries)
    idx = JobResidencyIndex(_jobs(), grace_seconds=0)
    cache_rep = ScratchAsCachePolicy(RetentionConfig(),
                                     residency=idx).run(fs_cache, NOW)
    flt_rep = FixedLifetimePolicy(RetentionConfig()).run(fs_flt, NOW)
    assert cache_rep.purged_files_total > flt_rep.purged_files_total
    assert fs_cache.file_count == 0
