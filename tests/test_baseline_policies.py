"""Tests for the related-work baselines: value-based and scratch-as-a-cache."""

import pytest

from repro.core import RetentionConfig, UserClass
from repro.core.cache_policy import JobResidencyIndex, ScratchAsCachePolicy
from repro.core.value_based import CompositeValueFunction, ValueBasedPolicy
from repro.core.exemption import ExemptionList
from repro.traces import JobRecord
from repro.vfs import DAY_SECONDS

from conftest import NOW, make_fs


# ---------------------------------------------------------------- value fn

def test_value_function_recency_dominates():
    vf = CompositeValueFunction()
    fs = make_fs([("/s/a.h5", 1, 1000, 1), ("/s/b.h5", 1, 1000, 300)])
    fresh = vf("/s/a.h5", fs.stat("/s/a.h5"), NOW)
    stale = vf("/s/b.h5", fs.stat("/s/b.h5"), NOW)
    assert fresh > stale


def test_value_function_small_beats_large():
    vf = CompositeValueFunction(w_recency=0.0, w_type=0.0, w_size=1.0)
    fs = make_fs([("/s/a.h5", 1, 4096, 10), ("/s/b.h5", 1, 1 << 40, 10)])
    assert vf("/s/a.h5", fs.stat("/s/a.h5"), NOW) > \
        vf("/s/b.h5", fs.stat("/s/b.h5"), NOW)


def test_value_function_type_weights():
    vf = CompositeValueFunction(w_recency=0.0, w_size=0.0, w_type=1.0)
    fs = make_fs([("/s/a.h5", 1, 100, 10), ("/s/a.log", 1, 100, 10)])
    assert vf("/s/a.h5", fs.stat("/s/a.h5"), NOW) > \
        vf("/s/a.log", fs.stat("/s/a.log"), NOW)


def test_value_function_extension_from_basename():
    """Regression: the extension used to come from the full path, so a
    dotted directory leaked into it (``/proj/v1.2/output`` scored as
    extension ``2/output``...)."""
    vf = CompositeValueFunction()
    assert vf.type_weight("/proj/v1.2/data.h5") == 1.0
    assert vf.type_weight("/proj/v1.2/run.log") == 0.1
    # Extensionless basename under a dotted directory: no extension at
    # all, which maps to the default weight -- not extension "2/output".
    assert vf.type_weight("/proj/v1.2/output") == vf.default_type_weight
    assert vf.type_weight("/s/noext") == vf.default_type_weight


def test_value_function_dotted_dir_scores_match_flat_path():
    """The same basename must score identically wherever it lives."""
    vf = CompositeValueFunction(w_recency=0.0, w_size=0.0, w_type=1.0)
    fs = make_fs([("/proj/v1.2/run.log", 1, 100, 10),
                  ("/flat/run.log", 1, 100, 10)])
    dotted = vf("/proj/v1.2/run.log", fs.stat("/proj/v1.2/run.log"), NOW)
    flat = vf("/flat/run.log", fs.stat("/flat/run.log"), NOW)
    assert dotted == flat == vf.w_type * 0.1


# ---------------------------------------------------------------- value policy

def test_value_policy_purges_lowest_value_to_target():
    # Equal sizes; ages decide value.  Capacity 400, target 50% -> 200 B.
    fs = make_fs([("/s/old1.log", 1, 100, 300), ("/s/old2.log", 1, 100, 200),
                  ("/s/mid.h5", 1, 100, 50), ("/s/new.h5", 1, 100, 1)])
    cfg = RetentionConfig(purge_target_utilization=0.5)
    report = ValueBasedPolicy(cfg).run(fs, NOW)
    assert report.purged_bytes_total == 200
    assert "/s/old1.log" not in fs and "/s/old2.log" not in fs
    assert "/s/mid.h5" in fs and "/s/new.h5" in fs
    assert report.target_met


def test_value_policy_threshold_mode():
    fs = make_fs([("/s/ancient.log", 1, 100, 1000), ("/s/new.h5", 1, 100, 1)],
                 capacity=0)  # no capacity -> threshold mode
    # ancient.log scores ~0.33 (no recency, small, log-typed); new.h5 ~1.6.
    report = ValueBasedPolicy(RetentionConfig(),
                              value_threshold=0.5).run(fs, NOW)
    assert "/s/ancient.log" not in fs
    assert "/s/new.h5" in fs
    assert report.purged_files_total == 1


def test_value_policy_respects_exemptions():
    fs = make_fs([("/s/keep.log", 1, 100, 1000), ("/s/drop.log", 1, 100, 1000)])
    cfg = RetentionConfig(purge_target_utilization=0.5)
    report = ValueBasedPolicy(cfg).run(
        fs, NOW, exemptions=ExemptionList(paths=["/s/keep.log"]))
    assert "/s/keep.log" in fs
    assert "/s/drop.log" not in fs


def test_value_policy_is_file_centric():
    """Unlike ActiveDR, a very active user's stale file still goes first."""
    from repro.core import UserActiveness
    fs = make_fs([("/s/vip/old.log", 1, 300, 300),
                  ("/s/idle/new.h5", 2, 100, 1)])
    cfg = RetentionConfig(purge_target_utilization=0.5)
    activeness = {1: UserActiveness(1, log_op=50.0, log_oc=50.0,
                                    has_op=True, has_oc=True)}
    report = ValueBasedPolicy(cfg).run(fs, NOW, activeness=activeness)
    assert "/s/vip/old.log" not in fs
    assert report.purged_bytes(UserClass.BOTH_ACTIVE) == 300


# ---------------------------------------------------------------- residency

def _jobs():
    return [
        JobRecord(1, 1, NOW - 3 * DAY_SECONDS, NOW - 2 * DAY_SECONDS,
                  NOW + DAY_SECONDS, 1),             # uid 1: running now
        JobRecord(2, 2, NOW - 30 * DAY_SECONDS, NOW - 29 * DAY_SECONDS,
                  NOW - 28 * DAY_SECONDS, 1),        # uid 2: long done
    ]


def test_residency_index_basic():
    idx = JobResidencyIndex(_jobs(), grace_seconds=0)
    assert idx.is_resident(1, NOW)
    assert not idx.is_resident(2, NOW)
    assert idx.is_resident(2, NOW - 28 * DAY_SECONDS - 100)
    assert not idx.is_resident(99, NOW)
    assert sorted(idx.users()) == [1, 2]


def test_residency_grace_window():
    idx = JobResidencyIndex(_jobs(), grace_seconds=2 * DAY_SECONDS)
    assert idx.is_resident(2, NOW - 26 * DAY_SECONDS - 100)  # inside grace
    assert not idx.is_resident(2, NOW)


def test_residency_merges_overlaps():
    jobs = [JobRecord(1, 1, 0, 0, 100, 1), JobRecord(2, 1, 50, 50, 200, 1)]
    idx = JobResidencyIndex(jobs, grace_seconds=0)
    assert idx.is_resident(1, 150)
    assert not idx.is_resident(1, 201)


def test_residency_rejects_negative_grace():
    with pytest.raises(ValueError):
        JobResidencyIndex([], grace_seconds=-1)


# ---------------------------------------------------------------- cache policy

def test_cache_policy_evicts_non_resident_users():
    fs = make_fs([("/s/u1/a", 1, 100, 50), ("/s/u2/b", 2, 100, 1)])
    idx = JobResidencyIndex(_jobs(), grace_seconds=0)
    policy = ScratchAsCachePolicy(RetentionConfig(), residency=idx)
    report = policy.run(fs, NOW)
    assert "/s/u1/a" in fs       # uid 1 has a running job
    assert "/s/u2/b" not in fs   # uid 2 idle -> evicted even though fresh
    assert report.purged_bytes_total == 100


def test_cache_policy_respects_exemptions():
    fs = make_fs([("/s/u2/a", 2, 100, 1), ("/s/u2/b", 2, 100, 1)])
    idx = JobResidencyIndex(_jobs(), grace_seconds=0)
    policy = ScratchAsCachePolicy(RetentionConfig(), residency=idx)
    policy.run(fs, NOW, exemptions=ExemptionList(paths=["/s/u2/a"]))
    assert "/s/u2/a" in fs and "/s/u2/b" not in fs


def test_cache_policy_is_most_aggressive():
    """On idle users, the cache policy purges strictly more than FLT."""
    from repro.core import FixedLifetimePolicy
    entries = [(f"/s/u2/f{i}", 2, 100, age) for i, age in
               enumerate((1, 30, 60, 120))]
    fs_cache, fs_flt = make_fs(entries), make_fs(entries)
    idx = JobResidencyIndex(_jobs(), grace_seconds=0)
    cache_rep = ScratchAsCachePolicy(RetentionConfig(),
                                     residency=idx).run(fs_cache, NOW)
    flt_rep = FixedLifetimePolicy(RetentionConfig()).run(fs_flt, NOW)
    assert cache_rep.purged_files_total > flt_rep.purged_files_total
    assert fs_cache.file_count == 0


# ------------------------------------------------- both-engine edge replays

def _mini_dataset(entries, jobs=(), capacity=None, days=8):
    """A minimal replayable dataset: snapshot entries, no access trace.

    The 8-day window yields exactly one purge trigger (day 7), so the
    snapshot ages set up at ``NOW`` are still in force when it fires.
    """
    from dataclasses import dataclass, field
    from typing import Any

    fs = make_fs(entries, capacity=capacity)

    @dataclass
    class _User:
        uid: int

    @dataclass
    class _Mini:
        filesystem: Any
        users: list
        jobs: list = field(default_factory=list)
        publications: list = field(default_factory=list)
        accesses: list = field(default_factory=list)
        replay_start: int = NOW
        replay_end: int = NOW + days * DAY_SECONDS

        def fresh_filesystem(self):
            return self.filesystem.replicate()

    uids = sorted({uid for _p, uid, _s, _a in entries})
    return _Mini(filesystem=fs, users=[_User(u) for u in uids],
                 jobs=list(jobs))


def _replay_mini(ds, policy_factory, exemptions=None):
    from repro.core import RetentionConfig
    from repro.emulation import (Emulator, EmulatorConfig, FastEmulator,
                                 compile_dataset)

    config = RetentionConfig()
    emu_config = EmulatorConfig()
    known = [u.uid for u in ds.users]
    ref = Emulator(policy_factory(config), config.activeness, emu_config,
                   exemptions).run(
        ds.fresh_filesystem(), ds.accesses, ds.jobs, ds.publications,
        ds.replay_start, ds.replay_end, known_uids=known)
    fast = FastEmulator(policy_factory(config), config.activeness,
                        emu_config, exemptions).run(
        compile_dataset(ds), known_uids=known)
    assert fast.reports == ref.reports
    assert fast.final_total_bytes == ref.final_total_bytes
    assert fast.final_file_count == ref.final_file_count
    return ref


def test_value_policy_zero_target_threshold_mode_both_engines():
    """With ample capacity the purge target is 0 and the value policy
    falls back to threshold mode: only below-threshold files go."""
    entries = [
        ("/s/u1/keep.h5", 1, 1000, 1),        # fresh -> high value
        ("/s/u1/junk.log", 1, 1 << 50, 2000), # ancient huge log -> below 0.1
    ]
    ds = _mini_dataset(entries, capacity=1 << 55)
    ref = _replay_mini(ds, lambda cfg: ValueBasedPolicy(cfg))
    (report,) = ref.reports
    assert report.target_bytes == 0
    assert report.purged_files_total == 1
    assert report.retained_files_total == 1


def test_cache_policy_zero_purge_both_engines():
    """A user with a job covering the trigger instant keeps every file."""
    trigger = NOW + 7 * DAY_SECONDS
    jobs = [JobRecord(1, 1, trigger - DAY_SECONDS, trigger - DAY_SECONDS,
                      trigger + DAY_SECONDS, 1)]
    entries = [("/s/u1/a", 1, 100, 400), ("/s/u1/b", 1, 200, 1)]
    ds = _mini_dataset(entries, jobs=jobs)
    ref = _replay_mini(ds, lambda cfg: ScratchAsCachePolicy(
        cfg, residency=JobResidencyIndex(ds.jobs, grace_seconds=0)))
    (report,) = ref.reports
    assert report.purged_files_total == 0
    assert report.retained_files_total == 2
    assert report.target_met


def test_all_users_exempt_both_engines():
    """Reserving the root directory exempts everything: neither ported
    baseline purges a single file through either engine."""
    entries = [
        ("/s/u1/old.log", 1, 1 << 30, 3000),
        ("/s/u2/old.chk", 2, 1 << 30, 3000),
    ]
    exemptions = ExemptionList(directories=["/s"])
    for factory in (
            lambda cfg: ValueBasedPolicy(cfg),
            lambda cfg: ScratchAsCachePolicy(
                cfg, residency=JobResidencyIndex([], grace_seconds=0))):
        ds = _mini_dataset(entries, capacity=1 << 50)
        ref = _replay_mini(ds, factory, exemptions=exemptions)
        (report,) = ref.reports
        assert report.purged_files_total == 0
        assert report.retained_files_total == 2


def test_zero_age_user_both_engines():
    """A user whose every file has age exactly zero at the trigger:
    recency is exactly 1.0, so the value policy retains all of it in
    threshold mode, while the cache policy still evicts (no job)."""
    trigger = NOW + 7 * DAY_SECONDS
    age = -7.0  # atime = NOW + 7 days == the trigger instant exactly
    entries = [
        ("/s/u1/a.log", 1, 1 << 40, age),
        ("/s/u1/b.log", 1, 1 << 40, age),
        ("/s/u2/old.log", 2, 1 << 50, 3000),
    ]
    ds = _mini_dataset(entries, capacity=1 << 55)
    ref = _replay_mini(ds, lambda cfg: ValueBasedPolicy(cfg))
    (report,) = ref.reports
    # uid 1's zero-age files score w_recency * 1.0 + ... > threshold.
    assert report.purged_files_total == 1
    assert report.retained_files_total == 2

    ds = _mini_dataset(entries, capacity=1 << 55)
    ref = _replay_mini(ds, lambda cfg: ScratchAsCachePolicy(
        cfg, residency=JobResidencyIndex([], grace_seconds=0)))
    (report,) = ref.reports
    assert report.purged_files_total == 3
    assert report.retained_files_total == 0
