"""Streaming-equivalence suite: the online retention service must
reproduce the batch FastEmulator bit for bit -- for every policy in the
retention spectrum, and across a checkpoint / kill / resume cycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.activeness import ActivenessParams
from repro.core.config import RetentionConfig
from repro.core.exemption import ExemptionList
from repro.core.incremental import build_activity_store
from repro.core.retention import ActiveDRPolicy
from repro.emulation import (
    CompiledTrace,
    EmulatorConfig,
    FastEmulator,
    compile_dataset,
    replay_bounds,
)
from repro.stream import (
    CheckpointManager,
    IncrementalActivenessState,
    OnlineRetentionService,
    dataset_event_stream,
    skip_events,
)
from repro.traces.schema import AppAccessRecord

from test_compiled_replay import POLICIES, assert_results_equal


@pytest.fixture(scope="module")
def dataset(tiny_dataset):
    return tiny_dataset


@pytest.fixture(scope="module")
def compiled(dataset) -> CompiledTrace:
    return compile_dataset(dataset)


def fast_result(dataset, compiled, policy_factory, emu_config, *,
                config=None, exemptions=None):
    config = config or RetentionConfig()
    known = [u.uid for u in dataset.users]
    return FastEmulator(policy_factory(config, dataset), config.activeness,
                        emu_config, exemptions).run(compiled,
                                                    known_uids=known)


def make_service(dataset, policy_factory, emu_config, *, config=None,
                 exemptions=None, checkpoint_dir=None,
                 checkpoint_every_days=7):
    config = config or RetentionConfig()
    start, end = replay_bounds(dataset)
    return OnlineRetentionService(
        policy_factory(config, dataset),
        snapshot_fs=dataset.filesystem,
        replay_start=start, replay_end=end,
        activeness_params=config.activeness,
        config=emu_config, exemptions=exemptions,
        known_uids=[u.uid for u in dataset.users],
        checkpoint_dir=checkpoint_dir,
        checkpoint_every_days=checkpoint_every_days)


@pytest.mark.parametrize("policy_factory",
                         [p for _, p in POLICIES],
                         ids=[name for name, _ in POLICIES])
def test_stream_matches_batch(dataset, compiled, policy_factory):
    emu_config = EmulatorConfig()
    service = make_service(dataset, policy_factory, emu_config)
    streamed = service.run(dataset_event_stream(dataset))
    batch = fast_result(dataset, compiled, policy_factory, emu_config)
    assert_results_equal(streamed, batch)
    assert service.stats["triggers"] == len(streamed.reports)


@pytest.mark.parametrize("apply_creates", [True, False])
@pytest.mark.parametrize("restore_on_miss", [True, False])
def test_stream_matches_batch_config_variants(dataset, compiled,
                                              apply_creates,
                                              restore_on_miss):
    emu_config = EmulatorConfig(apply_creates=apply_creates,
                                restore_on_miss=restore_on_miss)
    policy_factory = dict(POLICIES)["activedr"]
    streamed = make_service(dataset, policy_factory, emu_config).run(
        dataset_event_stream(dataset))
    batch = fast_result(dataset, compiled, policy_factory, emu_config)
    assert_results_equal(streamed, batch)


def test_stream_matches_batch_with_exemptions(dataset, compiled):
    paths = [p for p, _ in dataset.filesystem.iter_files()]
    exemptions = ExemptionList()
    for path in paths[::7]:
        exemptions.reserve_file(path)
    exemptions.reserve_directory(
        "/" + "/".join(paths[0].strip("/").split("/")[:2]))
    for _, policy_factory in POLICIES[:3]:
        streamed = make_service(dataset, policy_factory, EmulatorConfig(),
                                exemptions=exemptions).run(
            dataset_event_stream(dataset))
        batch = fast_result(dataset, compiled, policy_factory,
                            EmulatorConfig(), exemptions=exemptions)
        assert_results_equal(streamed, batch)


def test_refold_is_incremental(dataset):
    # The O(delta) claim: most users are quiescent at any trigger, so
    # only a minority of user-type histories are ever refolded.
    service = make_service(dataset, dict(POLICIES)["activedr"],
                           EmulatorConfig())
    service.run(dataset_event_stream(dataset))
    assert service.stats["triggers"] > 10
    assert service.stats["eval_users"] > 0
    refolded = service.stats["eval_refolded"]
    assert 0 < refolded < 0.5 * service.stats["eval_users"]


@pytest.mark.parametrize("policy_name", ["activedr", "value"])
def test_checkpoint_kill_resume_is_bit_identical(dataset, compiled,
                                                 tmp_path, policy_name):
    policy_factory = dict(POLICIES)[policy_name]
    emu_config = EmulatorConfig()
    ckdir = str(tmp_path / policy_name)
    events = list(dataset_event_stream(dataset))
    kill_at = len(events) // 2

    service = make_service(dataset, policy_factory, emu_config,
                           checkpoint_dir=ckdir, checkpoint_every_days=7)
    assert service.run(iter(events), stop_after_events=kill_at) is None

    latest = CheckpointManager(ckdir).latest()
    assert latest is not None
    config = RetentionConfig()
    resumed = OnlineRetentionService.resume(
        latest, policy_factory(config, dataset),
        activeness_params=config.activeness, config=emu_config,
        checkpoint_dir=ckdir)
    assert 0 < resumed.cursor <= kill_at
    streamed = resumed.run(skip_events(iter(events), resumed.cursor))

    batch = fast_result(dataset, compiled, policy_factory, emu_config)
    assert_results_equal(streamed, batch)
    # Counters continue across the kill: summed per-kind stats equal the
    # trace family sizes, with no double count of the redelivered event.
    assert resumed.cursor == len(events)
    assert resumed.stats["events_job"] == len(dataset.jobs)
    assert resumed.stats["events_publication"] == len(dataset.publications)
    assert resumed.stats["events_access"] == len(dataset.accesses)


def test_resume_rejects_fingerprint_mismatch(dataset, tmp_path):
    ckdir = str(tmp_path / "ck")
    service = make_service(dataset, dict(POLICIES)["activedr"],
                           EmulatorConfig(), checkpoint_dir=ckdir)
    service.run(dataset_event_stream(dataset))
    latest = CheckpointManager(ckdir).latest()
    other = ActiveDRPolicy(RetentionConfig(lifetime_days=7.0))
    with pytest.raises(ValueError, match="fingerprint"):
        OnlineRetentionService.resume(latest, other)


def test_checkpoint_refuses_partial_day(dataset, tmp_path):
    service = make_service(dataset, dict(POLICIES)["activedr"],
                           EmulatorConfig(),
                           checkpoint_dir=str(tmp_path / "ck"))
    start, _ = replay_bounds(dataset)
    events = iter(dataset_event_stream(dataset))
    for event in events:
        service.ingest(event)
        if service._buf_pid:
            break
    with pytest.raises(ValueError, match="partial day"):
        service.save_checkpoint()


def test_out_of_window_accesses_are_dropped(dataset):
    service = make_service(dataset, dict(POLICIES)["flt"],
                           EmulatorConfig())
    from repro.stream import StreamEvent
    early = AppAccessRecord(ts=service.replay_start - 10, uid=1,
                            path="/proj/a/x")
    late = AppAccessRecord(ts=service.window_end + 10, uid=1,
                           path="/proj/a/x")
    service.ingest(StreamEvent(early.ts, "access", early))
    service.ingest(StreamEvent(late.ts, "access", late))
    assert service.dropped_accesses == 2
    assert service.cursor == 2


def test_service_rejects_empty_window(dataset):
    config = RetentionConfig()
    with pytest.raises(ValueError):
        OnlineRetentionService(ActiveDRPolicy(config),
                               replay_start=100, replay_end=100)


PARAM_VARIANTS = [
    ActivenessParams(),
    ActivenessParams(period_days=30.0),
    ActivenessParams(empty_period="skip"),
    ActivenessParams(empty_period="epsilon", epsilon=1e-6),
    ActivenessParams(max_periods=3),
]


@pytest.mark.parametrize("params", PARAM_VARIANTS,
                         ids=["default", "p30", "skip", "epsilon", "maxp"])
def test_incremental_activeness_matches_store(dataset, params):
    known = [u.uid for u in dataset.users]
    store = build_activity_store(dataset.jobs, dataset.publications)
    t_end = max(max(j.submit_ts for j in dataset.jobs),
                max(p.ts for p in dataset.publications))
    t_mid = (min(j.submit_ts for j in dataset.jobs) + t_end) // 2

    # Full history at the end of the trace.
    inc = IncrementalActivenessState()
    for job in dataset.jobs:
        inc.add_job(job)
    for pub in dataset.publications:
        inc.add_publication(pub)
    assert inc.evaluate(t_end, params, known) == store.evaluate(
        t_end, params, known_uids=known)

    # Mid-trace: the incremental state only ever holds ts <= t_c (the
    # service's boundary ordering guarantees this); the batch store
    # clips internally.
    inc = IncrementalActivenessState()
    for job in dataset.jobs:
        if job.submit_ts <= t_mid:
            inc.add_job(job)
    for pub in dataset.publications:
        if pub.ts <= t_mid:
            inc.add_publication(pub)
    assert inc.evaluate(t_mid, params, known) == store.evaluate(
        t_mid, params, known_uids=known)


def test_incremental_activeness_snapshot_round_trip(dataset):
    known = [u.uid for u in dataset.users]
    params = ActivenessParams()
    inc = IncrementalActivenessState()
    for job in dataset.jobs:
        inc.add_job(job)
    for pub in dataset.publications:
        inc.add_publication(pub)
    t_c = max(j.submit_ts for j in dataset.jobs)
    expected = inc.evaluate(t_c, params, known)

    snap = inc.snapshot_state()
    for atype, (uids, ts, imp) in snap.items():
        assert uids.shape == ts.shape == imp.shape
        assert np.array_equal(uids, np.sort(uids))

    restored = IncrementalActivenessState()
    restored.restore_state(snap)
    assert restored.evaluate(t_c, params, known) == expected

    # The snapshot payload is interchangeable with the batch store's:
    # restoring it into a ColumnarActivityStore evaluates identically
    # (uid-major vs ingestion order is erased by the stable fold sort).
    cross = build_activity_store()
    cross.restore_state(snap)
    assert cross.evaluate(t_c, params, known_uids=known) == expected
