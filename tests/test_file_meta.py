"""Tests for FileMeta."""

from repro.vfs import DAY_SECONDS, FileMeta

from conftest import NOW


def _meta(age_days: float = 10.0) -> FileMeta:
    atime = NOW - int(age_days * DAY_SECONDS)
    return FileMeta(size=100, atime=atime, mtime=atime, ctime=atime, uid=1)


def test_age_seconds():
    m = _meta(10)
    assert m.age_seconds(NOW) == 10 * DAY_SECONDS


def test_age_days():
    m = _meta(2.5)
    assert abs(m.age_days(NOW) - 2.5) < 1e-9


def test_touch_advances_atime():
    m = _meta(10)
    m.touch(NOW)
    assert m.atime == NOW
    assert m.age_seconds(NOW) == 0


def test_touch_never_regresses():
    m = _meta(0)
    old = m.atime
    m.touch(old - 100)
    assert m.atime == old


def test_copy_is_independent():
    m = _meta(5)
    c = m.copy()
    c.touch(NOW)
    assert m.atime != c.atime
    assert (c.size, c.uid, c.stripe_count) == (m.size, m.uid, m.stripe_count)
