"""Property tests for the consistent-hash shard ring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.server import HashRing, splitmix64
from repro.server.shard import batch_worker_masks, event_worker_indices
from repro.stream import (EVENT_ACCESS, EVENT_JOB, EVENT_PUBLICATION,
                          BatchBuilder, StreamEvent)
from repro.traces import AppAccessRecord, JobRecord, PublicationRecord

UIDS = np.arange(20_000, dtype=np.int64)


def test_splitmix64_deterministic_and_spread():
    a = splitmix64(UIDS)
    b = splitmix64(UIDS)
    assert np.array_equal(a, b)
    # A finalizer must not collide on small sequential inputs.
    assert np.unique(a).size == UIDS.size


def test_placement_deterministic_across_constructions():
    r1 = HashRing(["s00", "s01", "s02"])
    r2 = HashRing(["s02", "s00", "s01"])       # order must not matter
    assert np.array_equal(r1.owner_indices(UIDS), r2.owner_indices(UIDS))
    assert r1.digest() == r2.digest()


def test_placement_roughly_balanced():
    ring = HashRing([f"s{i:02d}" for i in range(4)])
    owners = ring.owner_indices(UIDS)
    counts = np.bincount(owners, minlength=4)
    # 64 virtual points per shard keeps the imbalance moderate.
    assert counts.min() > 0.5 * UIDS.size / 4
    assert counts.max() < 1.7 * UIDS.size / 4


def test_add_moves_only_to_new_shard_and_about_k_over_n():
    ring = HashRing([f"s{i:02d}" for i in range(4)])
    before = ring.owner_indices(UIDS)
    before_names = [ring.shards[int(i)] for i in before]
    grown = HashRing([f"s{i:02d}" for i in range(5)])
    after_names = [grown.shards[int(i)] for i in grown.owner_indices(UIDS)]
    moved = [i for i in range(UIDS.size)
             if before_names[i] != after_names[i]]
    # Every moved key landed on the new shard, none shuffled between
    # surviving shards.
    assert all(after_names[i] == "s04" for i in moved)
    expected = UIDS.size / 5
    assert 0.3 * expected <= len(moved) <= 2.0 * expected


def test_remove_moves_only_departed_keys():
    ring = HashRing([f"s{i:02d}" for i in range(5)])
    before_names = [ring.shards[int(i)] for i in ring.owner_indices(UIDS)]
    shrunk = HashRing([f"s{i:02d}" for i in range(5)])
    shrunk.remove("s02")
    after_names = [shrunk.shards[int(i)] for i in shrunk.owner_indices(UIDS)]
    for b, a in zip(before_names, after_names):
        if b != "s02":
            assert a == b            # survivors keep every key they had
    moved = sum(1 for b, a in zip(before_names, after_names) if b != a)
    expected = UIDS.size / 5
    assert 0.3 * expected <= moved <= 2.0 * expected


def test_split_moves_only_donor_keys():
    ring = HashRing(["s00", "s01"])
    before_names = [ring.shards[int(i)] for i in ring.owner_indices(UIDS)]
    new_ring = ring.split("s00", "s02")
    after_names = [new_ring.shards[int(i)]
                   for i in new_ring.owner_indices(UIDS)]
    n_moved = 0
    for b, a in zip(before_names, after_names):
        if b == "s01":
            assert a == "s01"        # the bystander shard is untouched
        elif a != b:
            assert b == "s00" and a == "s02"
            n_moved += 1
    # The split hands the new shard alternate donor points, so roughly
    # half the donor's keys move.
    donor_keys = before_names.count("s00")
    assert 0.2 * donor_keys <= n_moved <= 0.8 * donor_keys
    # Epoch values: the original ring is unchanged.
    assert ring.shards == ["s00", "s01"]


def test_split_rejects_unknown_and_duplicate_names():
    ring = HashRing(["s00", "s01"])
    with pytest.raises(ValueError):
        ring.split("nope", "s02")
    with pytest.raises(ValueError):
        ring.split("s00", "s01")


def test_serialization_round_trip_preserves_split_placement():
    ring = HashRing(["s00", "s01"]).split("s00", "s02")
    clone = HashRing.from_jsonable(ring.to_jsonable())
    assert np.array_equal(ring.owner_indices(UIDS),
                          clone.owner_indices(UIDS))
    assert ring.digest() == clone.digest()
    # A name-derived reconstruction would NOT reproduce a split ring:
    # the explicit assignment is load-bearing.
    assert HashRing(["s00", "s01", "s02"]).digest() != ring.digest()


def test_member_mask_partitions_population():
    ring = HashRing(["a", "b", "c"])
    masks = [ring.member_mask(name, UIDS) for name in ring.shards]
    total = np.zeros(UIDS.size, dtype=int)
    for m in masks:
        total += m.astype(int)
    assert (total == 1).all()        # every uid owned exactly once


def test_batch_worker_masks_route_rows_to_owners():
    ring = HashRing(["w0", "w1"])
    order = ["w0", "w1"]
    events = [
        StreamEvent(10, EVENT_JOB, JobRecord(1, 3, 10, 11, 12, 1, 16)),
        StreamEvent(11, EVENT_ACCESS, AppAccessRecord(11, 7, "/f", "access")),
        StreamEvent(12, EVENT_PUBLICATION,
                    PublicationRecord(1, 12, [3, 7], 2)),
    ]
    builder = BatchBuilder()
    builder.extend(events)
    batch = builder.build()
    masks = batch_worker_masks(batch, ring, order)
    owner_of = {uid: ring.owner(uid) for uid in (3, 7)}
    # Job row 0 (uid 3) and access row 1 (uid 7) each to one owner.
    assert masks[order.index(owner_of[3]), 0]
    assert masks[:, 0].sum() == 1
    assert masks[order.index(owner_of[7]), 1]
    assert masks[:, 1].sum() == 1
    # The publication row reaches every worker owning an author.
    expect = {owner_of[3], owner_of[7]}
    got = {order[i] for i in range(2) if masks[i, 2]}
    assert got == expect


def test_author_less_publication_routes_to_deterministic_fallback():
    # An author-less publication folds into no user's score, but a
    # single-process serve still consumes the row: the fleet must route
    # it somewhere (exactly once, deterministically) or cursors and the
    # summary identity check diverge.  The fallback is uid 0's owner.
    ring = HashRing(["w0", "w1"])
    order = ["w0", "w1"]
    fallback = order.index(ring.owner(0))
    events = [
        StreamEvent(10, EVENT_PUBLICATION, PublicationRecord(1, 10, [], 2)),
        StreamEvent(11, EVENT_PUBLICATION,
                    PublicationRecord(2, 11, [3], 1)),
    ]
    builder = BatchBuilder()
    builder.extend(events)
    batch = builder.build()
    masks = batch_worker_masks(batch, ring, order)
    assert masks[fallback, 0] and masks[:, 0].sum() == 1
    # The authored row is untouched by the fallback path.
    assert masks[order.index(ring.owner(3)), 1]
    assert masks[:, 1].sum() == 1

    # Same when the batch carries no author table at all.
    builder = BatchBuilder()
    builder.extend(events[:1])
    batch = builder.build()
    masks = batch_worker_masks(batch, ring, order)
    assert masks[fallback, 0] and masks.sum() == 1

    # The v1 single-event path agrees with the batch path.
    assert event_worker_indices(events[0], ring, order) == [fallback]
