"""Tests for the synthetic Titan dataset generators."""

import numpy as np
import pytest

from repro.synth import (
    ARCHETYPES,
    AccessTraceConfig,
    FileTreeConfig,
    JobTraceConfig,
    PublicationConfig,
    TitanConfig,
    generate_accesses,
    generate_dataset,
    generate_file_trees,
    generate_jobs,
    generate_publications,
    generate_users,
    ts_utc,
)
from repro.vfs import DAY_SECONDS, best_practice_stripe_count


def test_ts_utc():
    assert ts_utc(1970) == 0
    assert ts_utc(1970, 1, 2) == DAY_SECONDS


def test_archetype_fractions_sum_to_one():
    assert sum(a.fraction for a in ARCHETYPES) == pytest.approx(1.0)


# ---------------------------------------------------------------- users

def _users(n=300, seed=3):
    return generate_users(n, seed, created_ts=ts_utc(2014),
                          replay_start=ts_utc(2016),
                          replay_end=ts_utc(2017))


def test_generate_users_counts_and_uids():
    users = _users()
    assert len(users) == 300
    assert [u.uid for u in users] == list(range(300))


def test_generate_users_deterministic():
    a, b = _users(seed=5), _users(seed=5)
    assert [(u.uid, u.archetype.name, u.intensity) for u in a] == \
           [(u.uid, u.archetype.name, u.intensity) for u in b]
    c = _users(seed=6)
    assert [(u.archetype.name) for u in a] != [(u.archetype.name) for u in c]


def test_hiatus_windows_exceed_lifetime():
    users = _users(600)
    hiatus = [u for u in users if u.archetype.hiatus]
    assert hiatus, "population should include hiatus users"
    for u in hiatus:
        lo, hi = u.hiatus_window
        assert ts_utc(2016) <= lo < hi <= ts_utc(2017)
        # Gap is 100+ days unless clipped by year end.
        if hi < ts_utc(2017):
            assert hi - lo >= 100 * DAY_SECONDS


def test_newcomers_have_onsets():
    users = _users(800)
    newcomers = [u for u in users if u.archetype.name == "newcomer"]
    assert newcomers
    for u in newcomers:
        assert u.onset_ts is not None
        assert u.onset_ts >= ts_utc(2016) - 90 * DAY_SECONDS


def test_generate_users_rejects_zero():
    with pytest.raises(ValueError):
        generate_users(0, 1, 0, 0, 1)


# ---------------------------------------------------------------- files

def _trees(users=None, seed=3):
    users = users or _users(60)
    cfg = FileTreeConfig(snapshot_ts=ts_utc(2015, 12, 28))
    return users, generate_file_trees(users, cfg, seed)


def test_file_trees_ownership_and_paths():
    users, trees = _trees()
    assert len(trees) == len(users)
    for user, tree in zip(users, trees):
        assert tree.uid == user.uid
        assert len(tree.paths) == len(tree.metas)
        for path, meta in zip(tree.paths, tree.metas):
            assert path.startswith(f"/lustre/scratch/{user.record.name}/")
            assert meta.uid == user.uid
            assert meta.size > 0
            assert meta.stripe_count == best_practice_stripe_count(meta.size)


def test_file_tree_requires_snapshot_ts():
    users = _users(5)
    with pytest.raises(ValueError):
        generate_file_trees(users, FileTreeConfig(), 1)


def test_file_ages_bounded():
    users, trees = _trees()
    snap = ts_utc(2015, 12, 28)
    max_age = FileTreeConfig(snapshot_ts=snap).max_age_days * DAY_SECONDS
    for tree in trees:
        for meta in tree.metas:
            age = snap - meta.atime
            assert 0 <= age <= max_age
            assert meta.ctime <= meta.atime


def test_toucher_files_all_fresh():
    users, trees = _trees(_users(800))
    snap = ts_utc(2015, 12, 28)
    by_uid = {t.uid: t for t in trees}
    for user in users:
        if user.archetype.toucher:
            ages = [(snap - m.atime) / DAY_SECONDS
                    for m in by_uid[user.uid].metas]
            assert max(ages) <= 61


def test_file_trees_deterministic():
    users = _users(30)
    cfg = FileTreeConfig(snapshot_ts=ts_utc(2015, 12, 28))
    a = generate_file_trees(users, cfg, 9)
    b = generate_file_trees(users, cfg, 9)
    assert [t.paths for t in a] == [t.paths for t in b]
    assert [[m.size for m in t.metas] for t in a] == \
           [[m.size for m in t.metas] for t in b]


# ---------------------------------------------------------------- jobs

def test_generate_jobs_sorted_and_valid():
    users = _users(100)
    cfg = JobTraceConfig(trace_start=ts_utc(2014), trace_end=ts_utc(2017))
    jobs = generate_jobs(users, cfg, 3)
    assert jobs
    ts = [j.submit_ts for j in jobs]
    assert ts == sorted(ts)
    for job in jobs[:200]:
        assert ts_utc(2014) <= job.submit_ts < ts_utc(2017)
        assert job.core_hours() > 0


def test_jobs_respect_hiatus():
    users = _users(600)
    cfg = JobTraceConfig(trace_start=ts_utc(2014), trace_end=ts_utc(2017))
    jobs = generate_jobs(users, cfg, 3)
    windows = {u.uid: u.hiatus_window for u in users if u.hiatus_window}
    span_slack = 7 * DAY_SECONDS  # sessions span days past their anchor
    for job in jobs:
        win = windows.get(job.uid)
        if win:
            lo, hi = win
            assert not (lo + span_slack <= job.submit_ts < hi)


def test_jobs_respect_newcomer_onset():
    users = _users(800)
    cfg = JobTraceConfig(trace_start=ts_utc(2014), trace_end=ts_utc(2017))
    jobs = generate_jobs(users, cfg, 3)
    onsets = {u.uid: u.onset_ts for u in users if u.onset_ts is not None}
    for job in jobs:
        onset = onsets.get(job.uid)
        if onset is not None:
            assert job.submit_ts >= onset


def test_jobs_invalid_window():
    with pytest.raises(ValueError):
        generate_jobs([], JobTraceConfig(trace_start=10, trace_end=5), 1)


# ---------------------------------------------------------------- pubs

def test_generate_publications_valid():
    users = _users(400)
    cfg = PublicationConfig(pub_start=ts_utc(2014), pub_end=ts_utc(2017))
    pubs = generate_publications(users, cfg, 3)
    assert pubs
    uid_set = {u.uid for u in users}
    for pub in pubs:
        assert pub.author_uids
        assert len(set(pub.author_uids)) == len(pub.author_uids)
        assert set(pub.author_uids) <= uid_set
        assert 0 <= pub.citations <= cfg.max_citations
    ts = [p.ts for p in pubs]
    assert ts == sorted(ts)


def test_publications_deterministic():
    users = _users(200)
    cfg = PublicationConfig(pub_start=ts_utc(2014), pub_end=ts_utc(2017))
    a = generate_publications(users, cfg, 3)
    b = generate_publications(users, cfg, 3)
    assert [(p.pub_id, p.ts, tuple(p.author_uids), p.citations) for p in a] \
        == [(p.pub_id, p.ts, tuple(p.author_uids), p.citations) for p in b]


# ---------------------------------------------------------------- accesses

def test_generate_accesses_sorted_in_window():
    users = _users(150)
    users, trees = _trees(users)
    cfg = AccessTraceConfig(replay_start=ts_utc(2016),
                            replay_end=ts_utc(2017))
    accesses = generate_accesses(users, trees, cfg, 3)
    assert accesses
    ts = [a.ts for a in accesses]
    assert ts == sorted(ts)
    assert ts[0] >= ts_utc(2016) and ts[-1] < ts_utc(2017)
    ops = {a.op for a in accesses}
    assert ops <= {"access", "create", "touch"}


def test_touchers_emit_touch_sweeps():
    users = _users(800)
    users, trees = _trees(users)
    cfg = AccessTraceConfig(replay_start=ts_utc(2016),
                            replay_end=ts_utc(2017))
    accesses = generate_accesses(users, trees, cfg, 3)
    toucher_uids = {u.uid for u in users if u.archetype.toucher}
    assert toucher_uids
    touch_ops = [a for a in accesses if a.op == "touch"]
    assert touch_ops
    assert {a.uid for a in touch_ops} <= toucher_uids


def test_hiatus_return_session_exists():
    users = _users(800)
    users, trees = _trees(users)
    cfg = AccessTraceConfig(replay_start=ts_utc(2016),
                            replay_end=ts_utc(2017))
    accesses = generate_accesses(users, trees, cfg, 3)
    for u in users:
        if u.hiatus_window and u.hiatus_window[1] < ts_utc(2017) - 5 * DAY_SECONDS:
            after = [a for a in accesses
                     if a.uid == u.uid and a.ts >= u.hiatus_window[1]]
            assert after, f"hiatus user {u.uid} never returned"
            break


# ---------------------------------------------------------------- dataset

def test_generate_dataset_summary(tiny_dataset):
    s = tiny_dataset.summary()
    assert s["users"] == 60
    assert s["files"] == tiny_dataset.filesystem.file_count
    assert s["bytes"] == tiny_dataset.filesystem.total_bytes
    assert tiny_dataset.filesystem.capacity_bytes == s["bytes"]


def test_generate_dataset_deterministic():
    a = generate_dataset(TitanConfig(n_users=25, seed=99))
    b = generate_dataset(TitanConfig(n_users=25, seed=99))
    assert a.summary() == b.summary()
    assert [(j.job_id, j.uid, j.submit_ts) for j in a.jobs] == \
           [(j.job_id, j.uid, j.submit_ts) for j in b.jobs]
    assert [(r.ts, r.uid, r.path, r.op) for r in a.accesses] == \
           [(r.ts, r.uid, r.path, r.op) for r in b.accesses]


def test_dataset_calendar():
    cfg = TitanConfig(base_year=2015)
    assert cfg.replay_start == ts_utc(2016)
    assert cfg.replay_end == ts_utc(2017)
    assert cfg.snapshot_ts == ts_utc(2015, 12, 28)
    assert cfg.history_start == ts_utc(2014)


def test_fresh_filesystem_is_replica(tiny_dataset):
    fs = tiny_dataset.fresh_filesystem()
    assert fs.total_bytes == tiny_dataset.filesystem.total_bytes
    path = next(iter(fs.iter_files()))[0]
    fs.remove_file(path)
    assert path in tiny_dataset.filesystem
