"""Tests for the directory-walk API."""

from repro.vfs import (
    DirEntry,
    find_stale,
    list_dir,
    subtree_usage,
    usage_report,
)

from conftest import NOW, make_fs


def _fs():
    return make_fs([
        ("/s/u1/projA/runs/a.out", 1, 100, 10),
        ("/s/u1/projA/runs/b.out", 1, 200, 100),
        ("/s/u1/projA/data.h5", 1, 50, 5),
        ("/s/u1/projB/c.dat", 1, 400, 200),
        ("/s/u2/top.log", 2, 25, 1),
    ])


def test_list_dir_root():
    entries = list_dir(_fs(), "/")
    assert [e.name for e in entries] == ["s"]
    assert entries[0].is_dir
    assert entries[0].file_count == 5
    assert entries[0].size == 775


def test_list_dir_user_level():
    entries = list_dir(_fs(), "/s/u1")
    assert [(e.name, e.is_dir) for e in entries] == [
        ("projA", True), ("projB", True)]
    proj_a = entries[0]
    assert proj_a.file_count == 3
    assert proj_a.size == 350
    assert proj_a.path == "/s/u1/projA"


def test_list_dir_mixed_files_and_dirs():
    entries = list_dir(_fs(), "/s/u1/projA")
    assert [(e.name, e.is_dir) for e in entries] == [
        ("data.h5", False), ("runs", True)]
    assert entries[0].size == 50 and entries[0].file_count == 1


def test_list_dir_missing():
    assert list_dir(_fs(), "/nope") == []


def test_subtree_usage():
    assert subtree_usage(_fs(), "/s/u1") == (4, 750)
    assert subtree_usage(_fs(), "/s/u1/projA/runs") == (2, 300)
    assert subtree_usage(_fs(), "/absent") == (0, 0)


def test_find_stale():
    stale = dict(find_stale(_fs(), "/s", NOW, lifetime_days=90))
    assert set(stale) == {"/s/u1/projA/runs/b.out", "/s/u1/projB/c.dat"}
    # Tighter scope narrows the candidates.
    scoped = dict(find_stale(_fs(), "/s/u1/projB", NOW, 90))
    assert set(scoped) == {"/s/u1/projB/c.dat"}


def test_find_stale_boundary_strict():
    fs = make_fs([("/s/x", 1, 10, 90.0)])
    assert list(find_stale(fs, "/s", NOW, 90)) == []


def test_usage_report_sorted_by_bytes():
    rows = usage_report(_fs(), "/s/u1")
    assert [r[0] for r in rows] == ["projB", "projA"]
    name, files, size, share = rows[0]
    assert (files, size) == (1, 400)
    assert abs(share - 400 / 750) < 1e-9


def test_usage_report_empty_dir():
    assert usage_report(_fs(), "/void") == []
