"""Edge-path tests for the communicator and analysis helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import days_above, days_per_range
from repro.parallel import PipeComm, run_spmd
from repro.parallel.comm import SerialComm


# ---------------------------------------------------------------- PipeComm

def test_pipecomm_single_rank_bcast_identity():
    comm = PipeComm(0, 1, [], None)
    assert comm.bcast("x") == "x"


def test_pipecomm_rejects_nonzero_root():
    comm = PipeComm(0, 2, [None], None)
    with pytest.raises(NotImplementedError):
        comm.bcast("x", root=1)
    with pytest.raises(NotImplementedError):
        comm.scatter(["a", "b"], root=1)
    with pytest.raises(NotImplementedError):
        comm.gather("a", root=1)


def test_pipecomm_scatter_validates_length():
    comm = PipeComm(0, 2, [None], None)
    with pytest.raises(ValueError):
        comm.scatter(["only-one"])


def _reduce_max(comm, payload):
    return comm.reduce(comm.rank * 10 + payload, max)


def test_spmd_reduce_root_only():
    results = run_spmd(_reduce_max, 3, 1)
    assert results[0] == 21
    assert results[1] is None and results[2] is None


def _barrier_then_rank(comm, _payload):
    comm.barrier()
    comm.barrier()
    return comm.rank


def test_spmd_repeated_barriers():
    assert run_spmd(_barrier_then_rank, 4, None) == [0, 1, 2, 3]


def _allgather_body(comm, _payload):
    return comm.allgather(comm.rank ** 2)


def test_spmd_allgather_everywhere():
    results = run_spmd(_allgather_body, 3, None)
    assert results == [[0, 1, 4]] * 3


# ---------------------------------------------------------------- analysis

@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(0.0, 1.0, allow_nan=False), max_size=200))
def test_days_per_range_never_overcounts(ratios):
    arr = np.asarray(ratios)
    counts = days_per_range(arr)
    assert sum(counts) <= arr.size
    # Everything >= 1% is binned exactly once.
    assert sum(counts) == int((arr >= 0.01).sum())


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1,
                max_size=100),
       st.floats(0.0, 1.0))
def test_days_above_monotone_in_threshold(ratios, threshold):
    arr = np.asarray(ratios)
    assert days_above(arr, threshold) >= days_above(arr, min(threshold + 0.1,
                                                             1.0))
