"""Exactly-once ingestion under network chaos.

The acceptance bar for the sequenced wire protocol, pinned end to end:

1. frame decoding is byte-dribble-proof: any split of the byte stream
   (including one byte at a time, and cuts around a batch frame's CRC
   trailer) decodes to the identical frame sequence, and an oversized
   length prefix is refused before a single body byte is buffered;
2. reconnect backoff is seeded jittered-exponential -- deterministic
   given a seed, capped, and never a fixed interval;
3. the edge enforces auth (constant-time shared secret, non-retryable
   ``unauthorized``) and overload protection (connection quota with
   retryable ``busy`` refusals);
4. re-publishing the same session is idempotent: the server's cursor
   skips everything already held, duplicates never reach the engine;
5. four producers streaming through a FaultPlan-scripted chaos proxy --
   severed connections mid-frame, stalls, split bytes, CRC corruption,
   and a ``kill -9`` of the server with ``--resume`` -- still land
   every event exactly once: per-tenant summaries are bit-identical to
   the batch ``FastEmulator``.
"""

from __future__ import annotations

import glob
import itertools
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.faults import ChaosProxy, FaultPlan
from repro.server import (NetworkEventStream, PublishRefused,
                          SocketListener, publish_events)
from repro.server.ingest import _backoff_delays, workspace_source_factory
from repro.server.protocol import (BinaryFrame, FrameError, FrameReader,
                                   connect_socket, encode_batch,
                                   encode_batch_frame, encode_frame,
                                   write_frame)
from repro.stream.batch import BatchBuilder, BatchRun
from repro.stream.events import job_events
from repro.synth import TitanConfig, generate_dataset

from test_server import (SERVE_TENANTS, _cli_env, _sock,
                         _tenant_args, _tenant_summaries, _wait_for,
                         server_batch_summaries, server_workspace)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ---------------------------------------------------------------------------
# helpers


@pytest.fixture(scope="module")
def jobs_events():
    ds = generate_dataset(TitanConfig(n_users=12, seed=5))
    return list(job_events(ds.jobs))[:200]


def _drain(stream):
    """Expand a NetworkEventStream into a flat event list."""
    out = []
    for item in stream:
        if isinstance(item, BatchRun):
            out.extend(item.iter_events())
        else:
            out.append(item)
    return out


def _payloads(events):
    return [ev.payload for ev in events]


class _ScriptedSocket:
    """A fake socket serving a byte string in scripted chunk sizes."""

    def __init__(self, data: bytes, chunk: int | None = None):
        self.data = data
        self.pos = 0
        self.chunk = chunk
        self.recv_into_calls = 0

    def recv(self, n: int) -> bytes:
        take = min(n, self.chunk or n, len(self.data) - self.pos)
        out = self.data[self.pos:self.pos + take]
        self.pos += take
        return out

    def recv_into(self, view) -> int:
        self.recv_into_calls += 1
        take = min(len(view), self.chunk or len(view),
                   len(self.data) - self.pos)
        view[:take] = self.data[self.pos:self.pos + take]
        self.pos += take
        return take


def _read_all(reader):
    frames = []
    while True:
        frame = reader.read()
        if frame is None:
            return frames
        frames.append(frame)


# ---------------------------------------------------------------------------
# 1. frame reassembly under arbitrary splits


def _mixed_wire_bytes(jobs_events):
    builder = BatchBuilder()
    for ev in jobs_events[:40]:
        builder.extend([ev])
    batch = builder.build()
    payload = encode_batch(batch, seq=7)
    return (encode_frame({"type": "hello", "source": "jobs", "seq": 1})
            + encode_batch_frame(payload)
            + encode_frame({"type": "end", "source": "jobs"})), payload


def test_framereader_byte_dribble_identical(jobs_events):
    wire, payload = _mixed_wire_bytes(jobs_events)
    oneshot = _read_all(FrameReader(_ScriptedSocket(wire),
                                    max_frame_bytes=1 << 23))
    for chunk in (1, 2, 3, 7):
        dripped = _read_all(FrameReader(_ScriptedSocket(wire, chunk=chunk),
                                        max_frame_bytes=1 << 23))
        assert dripped == oneshot, f"chunk={chunk}"
    assert [type(f) for f in oneshot] == [dict, BinaryFrame, dict]
    assert bytes(oneshot[1]) == payload


def test_framereader_split_at_batch_trailer(jobs_events):
    """Cuts straddling the CRC trailer/newline decode identically."""
    wire, payload = _mixed_wire_bytes(jobs_events)
    oneshot = _read_all(FrameReader(_ScriptedSocket(wire),
                                    max_frame_bytes=1 << 23))
    # The batch frame ends at: hello + header + payload + newline.
    hello_len = len(encode_frame({"type": "hello", "source": "jobs",
                                  "seq": 1}))
    frame_end = hello_len + len(encode_batch_frame(payload))
    for cut in range(frame_end - 6, frame_end + 2):
        sock = _ScriptedSocket(wire)
        orig_recv = sock.recv

        def recv(n, sock=sock, cut=cut, orig=orig_recv):
            if sock.pos < cut:
                n = min(n, cut - sock.pos)
            return orig(n)

        sock.recv = recv
        frames = _read_all(FrameReader(sock, max_frame_bytes=1 << 23))
        assert frames == oneshot, f"cut={cut}"


def test_framereader_oversized_prefix_never_allocates():
    sock = _ScriptedSocket(b"999999999\n" + b"x" * 64)
    reader = FrameReader(sock, max_frame_bytes=1 << 20)
    with pytest.raises(FrameError, match="out of range"):
        reader.read()
    # Refused on the header alone: the right-sized body buffer (and its
    # recv_into fill loop) must never have been created.
    assert sock.recv_into_calls == 0


# ---------------------------------------------------------------------------
# 2. seeded jittered exponential backoff


def test_backoff_deterministic_jittered_capped():
    import random

    def take(seed, n=12):
        return list(itertools.islice(
            _backoff_delays(0.2, 5.0, random.Random(seed)), n))

    a, b, c = take(3), take(3), take(4)
    assert a == b                      # seeded: reproducible
    assert a != c                      # seed actually matters
    for k, delay in enumerate(a):
        base = min(5.0, 0.2 * (1 << min(k, 16)))
        assert 0.5 * base <= delay < base   # jitter range [0.5, 1.0)
    assert max(a) < 5.0                # cap holds
    assert a[1] != a[0] * 2            # jittered, not fixed doubling


def test_publish_backoff_schedule_used(jobs_events, tmp_path):
    """The retry loop sleeps exactly the seeded backoff schedule."""
    import random

    slept = []
    clock_now = [0.0]

    def fake_sleep(s):
        slept.append(s)
        clock_now[0] += s

    def fake_clock():
        clock_now[0] += 0.001
        return clock_now[0]

    dead = _sock(tmp_path, "nobody.sock")
    with pytest.raises((OSError, ConnectionError)):
        publish_events(dead, "jobs", jobs_events[:5], retry_for=2.0,
                       retry_interval=0.2, retry_cap=5.0, retry_seed=11,
                       sleep=fake_sleep, clock=fake_clock)
    expected = list(itertools.islice(
        _backoff_delays(0.2, 5.0, random.Random(11)), len(slept)))
    assert slept == expected and len(slept) >= 2


# ---------------------------------------------------------------------------
# 3. auth + overload protection


def test_auth_token_gates_ingest(jobs_events):
    listener = SocketListener("127.0.0.1:0", expected={"jobs": 1},
                              auth_token="sesame")
    stream = NetworkEventStream(listener)
    try:
        with pytest.raises(PublishRefused, match="unauthorized") as exc:
            publish_events(listener.address, "jobs", jobs_events[:10])
        assert not exc.value.retryable  # no point retrying a bad secret
        with pytest.raises(PublishRefused, match="unauthorized"):
            publish_events(listener.address, "jobs", jobs_events[:10],
                           auth_token="wrong")
        assert int(listener.auth_failures) == 2
        n = publish_events(listener.address, "jobs", jobs_events[:10],
                           auth_token="sesame")
        assert n == 10
        assert len(_drain(stream)) == 10
    finally:
        listener.close()


def test_connection_quota_busy_refusal_retryable(jobs_events):
    listener = SocketListener("127.0.0.1:0", expected={"jobs": 1},
                              max_connections=1)
    stream = NetworkEventStream(listener)
    hog = connect_socket(listener.address)
    try:
        write_frame(hog, {"type": "hello", "protocol": 1,
                          "source": "jobs", "producer": "hog"})
        assert FrameReader(hog).read()["type"] == "ok"  # hog owns the slot

        done = threading.Event()

        def release_after_first_refusal(_s):
            # Back off once, then free the slot so the retry can land.
            if not done.is_set():
                hog.close()
                done.set()

        n = publish_events(listener.address, "jobs", jobs_events[:10],
                           retry_for=30.0, retry_interval=0.01,
                           retry_seed=1, sleep=release_after_first_refusal)
        assert n == 10
        assert int(listener.busy_refusals) >= 1
        assert len(_drain(stream)) == 10
    finally:
        hog.close()
        listener.close()


# ---------------------------------------------------------------------------
# 4. edge dedupe


def test_republish_same_session_is_idempotent(jobs_events):
    listener = SocketListener("127.0.0.1:0", expected={"jobs": 1})
    stream = NetworkEventStream(listener)
    try:
        kwargs = dict(session="prod:abc", batch_size=5)
        assert publish_events(listener.address, "jobs", jobs_events[:30],
                              **kwargs) == 30
        # Same producer incarnation publishes the identical range again
        # (e.g. it never saw the end ack): the hello cursor skips all 30
        # and the duplicate end is idempotent for the session.
        assert publish_events(listener.address, "jobs", jobs_events[:30],
                              **kwargs) == 30
        got = _drain(stream)
        assert _payloads(got) == _payloads(jobs_events[:30])
        source = listener.sources()[0]
        assert source.acked_seq == 30
    finally:
        listener.close()


def test_relay_seq_offset_holdoff(jobs_events):
    """A second-slice producer is held off until its predecessor lands."""
    listener = SocketListener("127.0.0.1:0", expected={"jobs": 2})
    stream = NetworkEventStream(listener)
    events = jobs_events[:60]
    try:
        results = {}

        def slice_b():
            results["b"] = publish_events(
                listener.address, "jobs", events[40:], seq_offset=40,
                session="prod:b", retry_for=30.0, retry_interval=0.01,
                retry_seed=2, batch_size=7)

        t = threading.Thread(target=slice_b)
        t.start()
        time.sleep(0.05)  # let B hit the hold-off refusal first
        results["a"] = publish_events(
            listener.address, "jobs", events[:40], session="prod:a",
            batch_size=7)
        got = _drain(stream)
        t.join()
        assert (results["a"], results["b"]) == (40, 20)
        assert _payloads(got) == _payloads(events)
    finally:
        listener.close()


# ---------------------------------------------------------------------------
# 5. chaos proxy: severs, stalls, splits, corruption -- exactly once


def test_sever_stall_split_corrupt_exactly_once(jobs_events):
    listener = SocketListener("127.0.0.1:0", expected={"jobs": 1})
    stream = NetworkEventStream(listener)
    plan = FaultPlan([
        {"target": "net:jobs", "kind": "sever", "at": 900},
        {"target": "net:jobs", "kind": "sever", "at": 2400},
        {"target": "net:jobs", "kind": "sever", "at": 5000},
        {"target": "net:jobs", "kind": "stall", "at": 3100, "arg": 0.01},
        {"target": "net:jobs", "kind": "split", "at": 3200, "arg": 40},
        {"target": "net:jobs", "kind": "corrupt", "at": 4000},
    ], seed=7)
    with ChaosProxy("127.0.0.1:0", listener.address, plan) as proxy:
        stats: dict = {}
        done: dict = {}

        def produce():
            done["n"] = publish_events(
                proxy.address, "jobs", jobs_events, batch_size=5,
                retry_for=60.0, retry_interval=0.05, retry_seed=3,
                stats=stats)

        t = threading.Thread(target=produce)
        t.start()
        got = _drain(stream)
        t.join()
    listener.close()
    assert done["n"] == len(jobs_events)
    # Exactly once, in order: nothing lost, nothing doubled.
    assert _payloads(got) == _payloads(jobs_events)
    assert proxy.severed == 3 and proxy.corrupted == 1
    assert proxy.stalled == 1 and proxy.splits == 1
    # The corrupt frame was caught by CRC and recovered via gap-resend.
    assert int(listener.decode_errors) >= 1
    assert int(listener.sequence_gaps) >= 1
    assert stats["retries"] >= 3
    assert len(stats.get("recovery_seconds", [])) >= 3
    # The ledger decomposes the final cursor exactly.
    snap = stream.sequence_snapshot(len(jobs_events))
    assert snap["source_seqs"] == {"jobs": len(jobs_events)}


def test_chaos_proxy_transparent_without_specs(jobs_events):
    listener = SocketListener("127.0.0.1:0", expected={"jobs": 1})
    stream = NetworkEventStream(listener)
    with ChaosProxy("127.0.0.1:0", listener.address, FaultPlan()) as proxy:
        n = publish_events(proxy.address, "jobs", jobs_events,
                           batch_size=50)
        got = _drain(stream)
    listener.close()
    assert n == len(jobs_events)
    assert _payloads(got) == _payloads(jobs_events)
    assert proxy.severed == 0 and proxy.forwarded_bytes > 0


# ---------------------------------------------------------------------------
# 6. THE acceptance gate: four producers, scripted severs, kill -9,
#    resume -- per-tenant summaries bit-identical to batch


def test_four_producers_severs_kill9_resume_bit_identical(
        server_workspace, server_batch_summaries, tmp_path):
    ck = str(tmp_path / "ck")
    ingest = _sock(tmp_path, "ingest.sock")
    proxy_addr = _sock(tmp_path, "proxy.sock")
    env = _cli_env()

    def serve(*extra):
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--workspace", server_workspace, "--listen", ingest,
             *(_tenant_args()), "--checkpoint-dir", ck,
             "--auth-token", "chaos-secret",
             "--expect-producers", "jobs=1,publications=1,accesses=2",
             *extra],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env)

    n_accesses = sum(1 for _ in workspace_source_factory(
        server_workspace, "accesses")())
    half = n_accesses // 2
    plan = FaultPlan([
        {"target": "net:jobs", "kind": "sever", "at": 7001},
        {"target": "net:accesses", "kind": "sever", "at": 5003},
        {"target": "net:accesses", "kind": "sever", "at": 12007},
        {"target": "net:publications", "kind": "stall", "at": 301,
         "arg": 0.05},
        {"target": "net:jobs", "kind": "split", "at": 9000, "arg": 64},
    ], seed=42)

    # The four producers of the scenario: one per trace family, with the
    # access trace relayed as two sequenced slices (B holds off until
    # A's slice is durable).
    def producer_specs():
        acc = workspace_source_factory(server_workspace, "accesses")
        return [
            ("jobs", workspace_source_factory(server_workspace, "jobs"),
             0, "chaos:jobs"),
            ("publications",
             workspace_source_factory(server_workspace, "publications"),
             0, "chaos:pubs"),
            ("accesses", lambda: itertools.islice(acc(), 0, half),
             0, "chaos:acc-a"),
            ("accesses", lambda: itertools.islice(acc(), half, None),
             half, "chaos:acc-b"),
        ]

    def launch_producers(proxy, errors):
        threads = []
        for name, factory, offset, session in producer_specs():
            def run(name=name, factory=factory, offset=offset,
                    session=session):
                try:
                    publish_events(proxy.address, name, factory,
                                   producer=session, session=session,
                                   seq_offset=offset, batch_size=64,
                                   auth_token="chaos-secret",
                                   retry_for=180.0, retry_interval=0.05,
                                   retry_seed=offset + len(name))
                except Exception as exc:  # surfaced after join
                    errors.append((session, exc))
            t = threading.Thread(target=run, daemon=True)
            t.start()
            threads.append(t)
        return threads

    errors: list = []
    server1 = serve()
    with ChaosProxy(proxy_addr, ingest, plan) as proxy:
        threads = launch_producers(proxy, errors)
        try:
            _wait_for(lambda: glob.glob(os.path.join(ck, "checkpoint-*.npz")),
                      120, "a first checkpoint")
            os.kill(server1.pid, signal.SIGKILL)
            server1.wait(timeout=60)

            server2 = serve("--resume")
            try:
                # A producer that finished against the dead incarnation
                # may hold events the checkpoint never saw; its retry
                # window has closed by now, so run every producer once
                # more -- exactly-once makes the replay free.
                for t in threads:
                    t.join(timeout=240)
                errors.clear()
                for t in launch_producers(proxy, errors):
                    t.join(timeout=240)
                out, err = server2.communicate(timeout=240)
            finally:
                if server2.poll() is None:
                    server2.kill()
        finally:
            if server1.poll() is None:
                server1.kill()
    assert not errors, errors
    assert server2.returncode == 0, (out, err)
    assert "resumed from" in out, (out, err)
    assert proxy.severed >= 3, proxy.describe()

    summaries = _tenant_summaries(out)
    assert set(summaries) == {spec.name for spec in SERVE_TENANTS}
    for spec in SERVE_TENANTS:
        assert summaries[spec.name] == \
            server_batch_summaries[spec.name].strip(), spec.name
