"""Reliability layer: retry/health semantics, quarantine, dead letters.

The headline property (the satellite task's quarantine invariant): for
*any* seeded-random interleaving of valid and injected-invalid events,
the guarded stream -- and the service state computed from it -- equals
what the valid subsequence alone produces.
"""

from __future__ import annotations

import heapq
import itertools
import json
import os
import random

import pytest

from repro.core.config import RetentionConfig
from repro.core.retention import ActiveDRPolicy
from repro.emulation import replay_bounds
from repro.faults import FaultPlan
from repro.stream import OnlineRetentionService, dataset_event_stream
from repro.stream.events import (access_events, job_events,
                                 publication_events)
from repro.stream.reliability import (DeadLetterLog, EventQuarantine,
                                      ReliableEventStream, ResilientSource,
                                      RetryPolicy, SourceHealth,
                                      TailingFileSource)
from repro.stream.reliability.quarantine import (REASON_BAD_KIND,
                                                 REASON_BAD_PAYLOAD,
                                                 REASON_DUPLICATE,
                                                 REASON_NOT_EVENT,
                                                 REASON_REGRESSION,
                                                 REASON_UNKNOWN_UID,
                                                 REASON_UNPARSABLE)
from repro.stream.events import EVENT_JOB, StreamEvent
from repro.traces.schema import JobRecord

from test_compiled_replay import assert_results_equal

_FAST = RetryPolicy(base_delay=0.0, max_delay=0.0, jitter=0.0)


# ---------------------------------------------------------------- retry

def test_retry_policy_backoff_and_jitter():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                         jitter=0.2, seed=1)
    delays = [policy.delay("jobs", i) for i in range(6)]
    # Deterministic: same policy, same source, same schedule.
    assert delays == [policy.delay("jobs", i) for i in range(6)]
    # Bounded by max_delay plus the jitter band.
    assert all(0.0 <= d <= 0.5 * 1.2 for d in delays)
    # Jitter differs per source.
    assert policy.delay("jobs", 0) != policy.delay("accesses", 0)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)


class _FlakyFactory:
    """Replayable source that raises OSError at scripted absolute indexes."""

    def __init__(self, items, fail_at=(), fail_opens=0):
        self.items = items
        self.fail_at = set(fail_at)   # index -> fail once when reached
        self.fail_opens = fail_opens  # initial open() failures
        self.opens = 0

    def __call__(self):
        self.opens += 1
        if self.opens <= self.fail_opens:
            raise OSError("scripted open failure")
        return self._gen()

    def _gen(self):
        for i, item in enumerate(self.items):
            if i in self.fail_at:
                self.fail_at.discard(i)  # transient: fails once
                raise OSError(f"scripted failure at {i}")
            yield item


def test_resilient_source_retries_and_recovers():
    items = list(range(20))
    factory = _FlakyFactory(items, fail_at={0, 7, 15}, fail_opens=2)
    src = ResilientSource("jobs", factory, policy=_FAST,
                          sleep=lambda s: None)
    assert list(src) == items
    assert src.health is SourceHealth.OK
    assert src.retries == 5  # 2 failed opens + 3 mid-stream failures
    assert src.episodes >= 1
    assert src.pos == len(items)


def test_resilient_source_dies_after_budget():
    class _AlwaysDown:
        def __call__(self):
            raise OSError("feed is gone")

    src = ResilientSource("jobs", _AlwaysDown(),
                          policy=RetryPolicy(max_attempts=3, base_delay=0.0,
                                             max_delay=0.0, jitter=0.0),
                          sleep=lambda s: None)
    assert list(src) == []
    assert src.health is SourceHealth.DEAD
    assert src.last_error is not None
    # Dead stays dead: the iterator does not resurrect.
    assert list(src) == []


def test_resilient_source_deadline():
    clock_value = [0.0]

    def clock():
        clock_value[0] += 10.0
        return clock_value[0]

    class _AlwaysDown:
        def __call__(self):
            raise OSError("down")

    src = ResilientSource("jobs", _AlwaysDown(),
                          policy=RetryPolicy(max_attempts=100,
                                             base_delay=0.0, max_delay=0.0,
                                             jitter=0.0, deadline=5.0),
                          sleep=lambda s: None, clock=clock)
    assert list(src) == []
    assert src.health is SourceHealth.DEAD


def test_dead_source_excluded_from_merge_with_watermark():
    def evts(n, start=100, step=10):
        return [StreamEvent(start + step * i, EVENT_JOB,
                            JobRecord(start + i, 1, start + step * i,
                                      start + step * i,
                                      start + step * i + 10, 1))
                for i in range(n)]

    good = evts(5)
    dying_items = evts(3, start=105)
    factory = _FlakyFactory(dying_items, fail_at={2})
    # One retry budget: the mid-stream failure at index 2 kills it.
    dying = ResilientSource(
        "dying", factory,
        policy=RetryPolicy(max_attempts=1, base_delay=0.0, max_delay=0.0,
                           jitter=0.0),
        sleep=lambda s: None)
    healthy = ResilientSource("healthy", lambda: iter(good), policy=_FAST,
                              sleep=lambda s: None)
    merged = list(heapq.merge(healthy, dying, key=lambda ev: ev.ts))
    # The merge finished (no exception) with everything the dead source
    # managed to deliver plus the full healthy feed.
    assert [ev for ev in merged if ev in good] == good
    assert dying.health is SourceHealth.DEAD
    assert dying.watermark == dying_items[1].ts  # held where it died


# ---------------------------------------------------------------- tailing

def test_tailing_file_source_yields_complete_lines(tmp_path):
    path = str(tmp_path / "feed.txt")
    with open(path, "w") as fh:
        fh.write("1\n2\n3")  # "3" has no newline: a write in progress

    polls = []

    def sleep(seconds):
        polls.append(seconds)
        if len(polls) == 1:
            # The writer finishes the line and closes the feed mid-poll.
            with open(path, "a") as fh:
                fh.write("\n4\n")

    tail = TailingFileSource(path, int, poll_interval=0.01,
                             stop_when=lambda: len(polls) >= 2,
                             sleep=sleep, clock=lambda: 0.0)
    assert list(tail()) == [1, 2, 3, 4]
    # As a replayable factory it restarts from the head.
    assert list(itertools.islice(tail(), 2)) == [1, 2]


def test_tailing_file_source_follows_rotation(tmp_path):
    path = str(tmp_path / "feed.txt")
    with open(path, "w") as fh:
        fh.write("1\n2\n")
    polls = []

    def sleep(seconds):
        polls.append(seconds)
        if len(polls) == 1:
            # Classic logrotate: rename the full file, recreate the path.
            os.replace(path, path + ".1")
            with open(path, "w") as fh:
                fh.write("3\n4\n")

    tail = TailingFileSource(path, int, poll_interval=0.01,
                             stop_when=lambda: len(polls) >= 2,
                             sleep=sleep, clock=lambda: 0.0)
    # Old-incarnation lines delivered exactly once, new file read from
    # offset 0 -- nothing duplicated, nothing skipped.
    assert list(tail()) == [1, 2, 3, 4]


def test_tailing_rotation_abandons_torn_line(tmp_path):
    path = str(tmp_path / "feed.txt")
    with open(path, "w") as fh:
        fh.write("1\npart")  # "part" is a write in progress, never finished
    polls = []
    bad = []

    def sleep(seconds):
        polls.append(seconds)
        if len(polls) == 1:
            os.replace(path, path + ".1")
            with open(path, "w") as fh:
                fh.write("2\n")

    tail = TailingFileSource(
        path, int, poll_interval=0.01,
        stop_when=lambda: len(polls) >= 2, sleep=sleep,
        clock=lambda: 0.0,
        on_error=lambda line, exc: bad.append((line, str(exc))))
    # The torn fragment is routed to on_error, never spliced onto the
    # new file's first line (which would parse as garbage like "part2").
    assert list(tail()) == [1, 2]
    assert bad == [("part", "torn line abandoned by rotation")]


def test_tailing_file_source_detects_truncation(tmp_path):
    path = str(tmp_path / "feed.txt")
    with open(path, "w") as fh:
        fh.write("100\n200\n20")  # trailing "20" torn by the rewrite
    polls = []
    bad = []

    def sleep(seconds):
        polls.append(seconds)
        if len(polls) == 1:
            # copytruncate-style rewrite in place: same inode, shorter.
            with open(path, "w") as fh:
                fh.write("3\n")

    tail = TailingFileSource(
        path, int, poll_interval=0.01,
        stop_when=lambda: len(polls) >= 2, sleep=sleep,
        clock=lambda: 0.0,
        on_error=lambda line, exc: bad.append((line, str(exc))))
    # Without the st_size check the stale 10-byte offset would swallow
    # the new content entirely; with it, the handle rewinds and parses
    # the rewritten file from its beginning.
    assert list(tail()) == [100, 200, 3]
    assert bad == [("20", "torn line abandoned by truncation")]


def test_tailing_file_source_idle_timeout_and_on_error(tmp_path):
    path = str(tmp_path / "feed.txt")
    with open(path, "w") as fh:
        fh.write("1\nnot-a-number\n2\n")
    clock_value = [0.0]

    def clock():
        clock_value[0] += 1.0
        return clock_value[0]

    bad = []
    tail = TailingFileSource(path, int, idle_timeout=3.0,
                             on_error=lambda line, exc: bad.append(line),
                             sleep=lambda s: None, clock=clock)
    assert list(tail()) == [1, 2]
    assert bad == ["not-a-number"]


# ---------------------------------------------------------------- quarantine

def _job_event(ts=1000, job_id=1, uid=1):
    return StreamEvent(ts, EVENT_JOB,
                       JobRecord(job_id, uid, ts, ts, ts + 10, 1))


def test_quarantine_reason_codes():
    quarantine = EventQuarantine(known_uids=[1, 2])
    good = _job_event()
    bad = [
        ("garbage line", REASON_NOT_EVENT),
        (None, REASON_NOT_EVENT),
        (StreamEvent(1000, "meteor", good.payload), REASON_BAD_KIND),
        (StreamEvent(1000, EVENT_JOB, "not a record"), REASON_BAD_PAYLOAD),
        (_job_event(uid=99, job_id=7), REASON_UNKNOWN_UID),
        (_job_event(ts=900, job_id=8), REASON_REGRESSION),
        (_job_event(job_id=1), REASON_DUPLICATE),
    ]
    stream = [good] + [obj for obj, _reason in bad]
    out = list(quarantine.guard("jobs", stream))
    assert out == [good]
    summary = quarantine.summary()
    assert summary["quarantined"] == len(bad)
    for _obj, reason in bad:
        assert summary["by_reason"][reason] >= 1
    assert summary["by_source"] == {"jobs": len(bad)}


def test_quarantine_unknown_uid_is_opt_in():
    quarantine = EventQuarantine()  # no known_uids: anything goes
    ev = _job_event(uid=424242)
    assert list(quarantine.guard("jobs", [ev])) == [ev]
    assert quarantine.total == 0


def test_quarantine_duplicate_ids_scoped_per_source():
    quarantine = EventQuarantine()
    a, b = _job_event(job_id=5), _job_event(job_id=5)
    assert list(quarantine.guard("jobs", [a])) == [a]
    # Same id from a *different* source is a different feed's counter.
    assert list(quarantine.guard("jobs2", [b])) == [b]
    assert quarantine.total == 0


def test_dead_letter_rotation(tmp_path):
    path = str(tmp_path / "dead.jsonl")
    log = DeadLetterLog(path, max_bytes=200, backups=1)
    quarantine = EventQuarantine(dead_letter=log)
    for i in range(20):
        quarantine.divert("jobs", REASON_NOT_EVENT, f"detail {i}",
                          "x" * 40)
    log.close()
    assert log.written == 20
    assert log.rotations >= 1
    assert os.path.exists(path) and os.path.exists(f"{path}.1")
    assert os.path.getsize(path) <= 200 + 200  # one record of slack
    # Every surviving line is valid JSON with the reason code.
    with open(path) as fh:
        for line in fh:
            rec = json.loads(line)
            assert rec["reason"] == REASON_NOT_EVENT
    summary = quarantine.summary()
    assert summary["dead_letter"]["written"] == 20
    assert summary["dead_letter"]["rotations"] == log.rotations


def test_dead_letter_rotation_boundary_is_strict(tmp_path):
    # Measure one record's exact on-disk size with a probe log...
    probe = DeadLetterLog(str(tmp_path / "probe.jsonl"), max_bytes=10_000)
    EventQuarantine(dead_letter=probe).divert(
        "jobs", REASON_NOT_EVENT, "d", "x")
    probe.close()
    size = os.path.getsize(probe.path)

    # ...then set max_bytes to exactly that size: a file AT the limit
    # must not rotate (the trigger is strictly greater-than).
    path = str(tmp_path / "dead.jsonl")
    log = DeadLetterLog(path, max_bytes=size, backups=1)
    quarantine = EventQuarantine(dead_letter=log)
    quarantine.divert("jobs", REASON_NOT_EVENT, "d", "x")
    assert log.rotations == 0
    quarantine.divert("jobs", REASON_NOT_EVENT, "d", "x")
    assert log.rotations == 1
    # The reopened live file keeps accepting appends after rotation.
    quarantine.divert("jobs", REASON_NOT_EVENT, "d", "x")
    log.close()
    assert os.path.exists(path) and os.path.exists(f"{path}.1")
    with open(path) as fh:
        assert len(fh.readlines()) == 1
    with open(f"{path}.1") as fh:
        assert len(fh.readlines()) == 2


def test_dead_letter_resume_from_restores_counts(tmp_path):
    path = str(tmp_path / "dead.jsonl")
    log = DeadLetterLog(path, max_bytes=300, backups=1)
    quarantine = EventQuarantine(dead_letter=log)
    for i in range(12):
        # The final two records cover both sources and both reasons, so
        # the newest surviving file always carries every lifetime max.
        quarantine.divert("jobs" if i % 2 else "accesses",
                          (REASON_UNPARSABLE if i % 3 == 2
                           else REASON_NOT_EVENT),
                          f"detail {i}", "x" * 30)
    log.close()
    # Rotation has dropped the oldest records -- the counts can no longer
    # be recovered by counting surviving lines.
    assert log.rotations >= 2
    surviving = 0
    for candidate in (path, f"{path}.1"):
        with open(candidate) as fh:
            surviving += len(fh.readlines())
    assert surviving < 12
    # The crash that ends a daemon can tear its final append mid-line;
    # resume must skip it (a parsed seq of 99 would corrupt the total).
    with open(path, "a") as fh:
        fh.write('{"seq": 99, "reason"')

    fresh = EventQuarantine()
    fresh.resume_from(DeadLetterLog(path, max_bytes=300, backups=1))
    # The cumulative per-record counters let the restarted quarantine
    # continue the old daemon's lifetime totals exactly.
    assert fresh.total == quarantine.total == 12
    assert fresh.by_reason == quarantine.by_reason
    assert fresh.by_source == quarantine.by_source


def test_reader_hook_diverts_unparsable_rows(tmp_path):
    from repro.traces.io import read_jobs
    path = str(tmp_path / "jobs.txt")
    with open(path, "w") as fh:
        fh.write("1|1|100|100|110|2|16\n")
        fh.write("CORRUPTED GZIP FRAGMENT\n")
        fh.write("2|1|200|200|210|2|16\n")
    quarantine = EventQuarantine()
    jobs = list(read_jobs(path, on_error=quarantine.reader_hook("jobs")))
    assert [j.job_id for j in jobs] == [1, 2]
    assert quarantine.by_reason == {REASON_UNPARSABLE: 1}


# ---------------------------------------------------------------- property

def _guarded_merge(dataset, plan, quarantine):
    """The ReliableEventStream wiring, over in-memory trace lists."""
    sources = [
        ResilientSource("jobs", lambda: job_events(dataset.jobs),
                        policy=_FAST, plan=plan, sleep=lambda s: None),
        ResilientSource("publications",
                        lambda: publication_events(dataset.publications),
                        policy=_FAST, plan=plan, sleep=lambda s: None),
        ResilientSource("accesses", lambda: access_events(dataset.accesses),
                        policy=_FAST, plan=plan, sleep=lambda s: None),
    ]
    guarded = [quarantine.guard(src.name, src) for src in sources]
    return heapq.merge(*guarded, key=lambda ev: ev.ts)


def _random_plan(rng, sizes):
    """A random insertion-only fault plan over the three sources."""
    specs = []
    for target, size in sizes.items():
        n_faults = rng.randint(0, 8)
        for _ in range(n_faults):
            kind = rng.choice(["malformed", "duplicate", "regress",
                               "stall", "eio"])
            # duplicate/regress need ids to be jobs/pubs to stay
            # quarantinable: a duplicated access is legitimate traffic.
            if kind == "duplicate" and target == "accesses":
                kind = "malformed"
            spec = {"target": target, "kind": kind,
                    "at": rng.randrange(max(1, size)),
                    "count": rng.randint(1, 3)}
            if kind == "regress":
                spec["arg"] = rng.choice([1, 3600, 86_400])
            specs.append(spec)
    return FaultPlan(specs, seed=rng.randrange(1 << 30))


def test_property_guarded_stream_equals_valid_subsequence(tiny_dataset):
    clean = list(dataset_event_stream(tiny_dataset))
    sizes = {"jobs": len(tiny_dataset.jobs),
             "publications": len(tiny_dataset.publications),
             "accesses": len(tiny_dataset.accesses)}
    rng = random.Random(20210815)
    for trial in range(25):
        plan = _random_plan(rng, sizes)
        quarantine = EventQuarantine()
        got = list(_guarded_merge(tiny_dataset, plan, quarantine))
        assert got == clean, (
            f"trial {trial}: guarded stream diverged under plan "
            f"{plan.to_dict()}")
        inserted = sum(spec.count for spec in plan.specs
                       if spec.kind in ("malformed", "duplicate", "regress"))
        assert quarantine.total <= inserted


def test_property_service_state_matches_under_faults(tiny_dataset):
    """End to end: the *service result* is unchanged by injected faults."""
    start, end = replay_bounds(tiny_dataset)
    known = [u.uid for u in tiny_dataset.users]

    def run(events):
        service = OnlineRetentionService(
            ActiveDRPolicy(RetentionConfig()),
            snapshot_fs=tiny_dataset.fresh_filesystem(),
            replay_start=start, replay_end=end, known_uids=known)
        return service.run(events)

    baseline = run(dataset_event_stream(tiny_dataset))
    sizes = {"jobs": len(tiny_dataset.jobs),
             "publications": len(tiny_dataset.publications),
             "accesses": len(tiny_dataset.accesses)}
    rng = random.Random(4)
    for _trial in range(3):
        plan = _random_plan(rng, sizes)
        quarantine = EventQuarantine()
        faulty = run(_guarded_merge(tiny_dataset, plan, quarantine))
        assert_results_equal(faulty, baseline)


# ---------------------------------------------------------------- workspace

def test_reliable_event_stream_survives_missing_file(tmp_path):
    """A workspace losing one feed degrades; the merge still completes."""
    from repro.cli.workspace import save_workspace
    from repro.synth import TitanConfig, generate_dataset

    ws = str(tmp_path / "ws")
    save_workspace(generate_dataset(TitanConfig(n_users=15, seed=3)), ws,
                   n_shards=1)
    os.unlink(os.path.join(ws, "publications.txt.gz"))
    stream = ReliableEventStream(
        ws, retry=RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0,
                              jitter=0.0), sleep=lambda s: None)
    events = list(stream)
    assert events  # jobs + accesses still flowed
    report = stream.report()
    assert report["sources"]["publications"]["health"] == "dead"
    assert "publications" in report["held_watermarks"]
    assert report["sources"]["jobs"]["health"] == "ok"
    assert stream.degraded
