"""The fault-injection substrate: plans, IO wrappers, stream wrappers.

Determinism is the load-bearing property throughout -- the same plan
must produce byte-identical corruption and fire each spec exactly
``count`` times regardless of how many wrappers are rebuilt around it.
"""

from __future__ import annotations

import errno
import io
import json
import os

import pytest

from repro.faults import (FaultPlan, FaultSpec, FaultyIO, FaultyStream,
                          InjectedIOError, corrupt_file, trace_writer_wrap)


# ---------------------------------------------------------------- plans

def test_spec_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("jobs", "meteor", at=0)
    with pytest.raises(ValueError, match="non-negative"):
        FaultSpec("jobs", "eio", at=-1)
    with pytest.raises(ValueError, match="count"):
        FaultSpec("jobs", "eio", at=0, count=0)


def test_plan_json_round_trip(tmp_path):
    plan = FaultPlan([{"target": "jobs", "kind": "stall", "at": 3},
                      FaultSpec("checkpoint", "kill", at=40)], seed=7)
    path = str(tmp_path / "plan.json")
    with open(path, "w") as fh:
        json.dump(plan.to_dict(), fh)
    loaded = FaultPlan.from_json(path)
    assert loaded.seed == 7
    assert loaded.specs == plan.specs


def test_claim_is_plan_global():
    spec = FaultSpec("jobs", "eio", at=5, count=2)
    plan = FaultPlan([spec])
    assert plan.claim(spec)
    assert plan.fired(spec) == 1
    # A rebuilt wrapper shares the plan, so the second claim is the last.
    assert plan.claim(spec)
    assert not plan.claim(spec)
    assert plan.fired(spec) == 2


def test_for_target_indexes_by_position():
    plan = FaultPlan([{"target": "a", "kind": "eio", "at": 1},
                      {"target": "a", "kind": "stall", "at": 1},
                      {"target": "b", "kind": "eio", "at": 2}])
    by_at = plan.for_target("a")
    assert sorted(by_at) == [1]
    assert len(by_at[1]) == 2
    assert plan.has_target("b") and not plan.has_target("c")


def test_plan_rng_is_deterministic():
    spec = FaultSpec("accesses", "malformed", at=9)
    a = FaultPlan([spec], seed=3).rng(spec).random()
    b = FaultPlan([spec], seed=3).rng(spec).random()
    c = FaultPlan([spec], seed=4).rng(spec).random()
    assert a == b != c


# ---------------------------------------------------------------- FaultyIO

def _io(plan, target="ck", **kw):
    return FaultyIO(io.BytesIO(), plan, target, **kw)


def test_faulty_io_write_eio_once():
    plan = FaultPlan([{"target": "ck", "kind": "eio", "at": 1}])
    fh = _io(plan)
    fh.write(b"aa")
    with pytest.raises(OSError) as exc:
        fh.write(b"bb")
    assert exc.value.errno == errno.EIO
    # The write index was consumed and the fault is spent: a re-opened
    # handle continues the count and does not re-fire.
    fh2 = _io(plan)
    fh2.write(b"cc")


def test_faulty_io_partial_write_disk_full():
    plan = FaultPlan([{"target": "ck", "kind": "partial_write", "at": 0}])
    inner = io.BytesIO()
    fh = FaultyIO(inner, plan, "ck")
    with pytest.raises(OSError) as exc:
        fh.write(b"abcdef")
    assert exc.value.errno == errno.ENOSPC
    assert inner.getvalue() == b"abc"  # the torn half made it to disk


def test_faulty_io_kill_hook():
    killed = []
    plan = FaultPlan([{"target": "ck", "kind": "kill", "at": 0}])
    fh = FaultyIO(io.BytesIO(), plan, "ck", kill=lambda: killed.append(1))
    fh.write(b"x")
    assert killed == [1]


def test_faulty_io_read_truncate_then_eof():
    plan = FaultPlan([{"target": "ck", "kind": "truncate", "at": 1,
                       "arg": 2}])
    fh = FaultyIO(io.BytesIO(b"abcdefgh"), plan, "ck")
    assert fh.read(4) == b"abcd"
    assert fh.read(4) == b"ef"   # truncated to arg=2 bytes
    assert fh.read(4) == b""     # and EOF forever after
    assert fh.read() == b""


def test_faulty_io_read_bitflip_deterministic():
    def flipped():
        plan = FaultPlan([{"target": "ck", "kind": "bitflip", "at": 0}],
                         seed=11)
        return FaultyIO(io.BytesIO(b"\x00" * 32), plan, "ck").read()

    first, second = flipped(), flipped()
    assert first == second
    assert first != b"\x00" * 32
    assert sum(bin(b).count("1") for b in first) == 1  # exactly one bit


def test_faulty_io_stall_calls_sleep():
    slept = []
    plan = FaultPlan([{"target": "ck", "kind": "stall", "at": 0,
                       "arg": 0.25}])
    fh = FaultyIO(io.BytesIO(), plan, "ck", sleep=slept.append)
    fh.write(b"x")
    assert slept == [0.25]


def test_faulty_io_passthrough():
    plan = FaultPlan([])
    inner = io.BytesIO()
    with FaultyIO(inner, plan, "ck") as fh:
        fh.write(b"data")
        fh.flush()
        assert fh.tell() == 4
    assert inner.closed


# ---------------------------------------------------------------- streams

class _Source:
    """Minimal stand-in for a ResilientSource: owns pos / last_event."""

    def __init__(self, name, items):
        self.name = name
        self.pos = 0
        self.last_event = None
        self._items = items

    def events(self):
        # Like ResilientSource's reopen: resume after already-consumed
        # records, counting from the current position.
        for item in self._items[self.pos:]:
            self.pos += 1
            self.last_event = item
            yield item


class _Event:
    def __init__(self, ts, kind, payload):
        self.ts, self.kind, self.payload = ts, kind, payload

    def __eq__(self, other):
        return (isinstance(other, _Event)
                and (self.ts, self.kind, self.payload)
                == (other.ts, other.kind, other.payload))

    def __repr__(self):
        return f"_Event({self.ts}, {self.kind!r}, {self.payload!r})"


def _events(n):
    return [_Event(100 + i, "job", f"p{i}") for i in range(n)]


def _drain(plan, items):
    src = _Source("jobs", items)
    out = []
    stream = FaultyStream(src.events(), plan, src)
    while True:
        try:
            out.append(next(stream))
        except StopIteration:
            return out
        except OSError:
            continue  # transient injection; the retry layer's job
    return out


def test_stream_injections_never_consume_events():
    items = _events(10)
    plan = FaultPlan([
        {"target": "jobs", "kind": "malformed", "at": 3, "count": 2},
        {"target": "jobs", "kind": "duplicate", "at": 5},
        {"target": "jobs", "kind": "regress", "at": 7},
        {"target": "jobs", "kind": "stall", "at": 8},
    ], seed=1)
    out = _drain(plan, items)
    # Every real event is delivered, in order: dropping anything that is
    # not the next expected item leaves exactly the clean sequence.
    remaining = iter(items)
    expected = next(remaining)
    delivered = []
    for ev in out:
        if ev is expected:
            delivered.append(ev)
            expected = next(remaining, None)
    assert delivered == items
    assert len(out) == len(items) + 4  # stall raised, 4 objects inserted


def test_stream_duplicate_and_regress_shapes():
    items = _events(4)
    plan = FaultPlan([
        {"target": "jobs", "kind": "duplicate", "at": 2},
        {"target": "jobs", "kind": "regress", "at": 3, "arg": 10},
    ])
    out = _drain(plan, items)
    dup = out[2]
    assert dup == items[1]  # verbatim copy of the last delivered event
    regressed = out[4]
    assert regressed.ts == items[2].ts - 10
    assert regressed.payload == items[2].payload


def test_stream_stall_is_transient_and_single_shot():
    items = _events(3)
    src = _Source("jobs", items)
    plan = FaultPlan([{"target": "jobs", "kind": "stall", "at": 1}])
    stream = FaultyStream(src.events(), plan, src)
    assert next(stream) == items[0]
    with pytest.raises(InjectedIOError):
        next(stream)
    # A rebuilt wrapper (simulating a source reopen) does not re-fire.
    stream2 = FaultyStream(src.events(), plan, src)
    assert next(stream2) == items[1]


def test_stream_malformed_shapes_are_deterministic():
    def garbage_kinds():
        plan = FaultPlan([{"target": "jobs", "kind": "malformed", "at": 2,
                           "count": 6}], seed=5)
        out = _drain(plan, _events(6))
        return [type(x).__name__ for x in out if x not in _events(6)]

    assert garbage_kinds() == garbage_kinds()
    assert len(garbage_kinds()) == 6


# ---------------------------------------------------------------- files

def test_corrupt_file_truncate(tmp_path):
    path = str(tmp_path / "f.bin")
    with open(path, "wb") as fh:
        fh.write(b"x" * 1000)
    corrupt_file(path, "truncate", frac=0.25)
    assert os.path.getsize(path) == 250


def test_corrupt_file_bitflip_deterministic(tmp_path):
    out = []
    for trial in range(2):
        path = str(tmp_path / f"f{trial}.bin")
        with open(path, "wb") as fh:
            fh.write(bytes(range(256)))
        # Same seed and size: the flip lands identically (path differs,
        # so use one name per trial round to keep the seed inputs equal).
        corrupt_file(path, "bitflip", seed=9)
        with open(path, "rb") as fh:
            out.append(fh.read())
    assert out[0] != bytes(range(256))
    with pytest.raises(ValueError, match="unknown corruption"):
        corrupt_file(path, "shred")


def test_corrupt_file_torn_tail_chops_only_the_end(tmp_path):
    path = str(tmp_path / "f.bin")
    payload = bytes(range(256)) * 4
    with open(path, "wb") as fh:
        fh.write(payload)
    corrupt_file(path, "torn_tail", seed=3)
    size = os.path.getsize(path)
    assert len(payload) - 64 <= size < len(payload)
    # A pure tail chop: everything before the tear is byte-identical.
    with open(path, "rb") as fh:
        assert fh.read() == payload[:size]


# ---------------------------------------------------------- trace writers

def _jobs(n):
    from repro.traces.schema import JobRecord
    return [JobRecord(i + 1, 1, 100 + i, 100 + i, 200 + i, 1)
            for i in range(n)]


def test_trace_writer_eio_aborts_atomically(tmp_path):
    from repro.traces.io import read_jobs, write_jobs

    path = str(tmp_path / "jobs.txt")
    write_jobs(path, _jobs(10))  # a good generation already on disk
    plan = FaultPlan([{"target": "jobs_writer", "kind": "eio", "at": 4}])
    with pytest.raises(OSError) as exc:
        write_jobs(path, _jobs(8), wrap=trace_writer_wrap(plan, "jobs_writer"))
    assert exc.value.errno == errno.EIO
    # The atomic writer aborted into tmp removal: the previous
    # generation survives intact and no torn sibling is left behind.
    assert [j.job_id for j in read_jobs(path)] == list(range(1, 11))
    assert not os.path.exists(path + ".tmp")


def test_trace_writer_kill_fires_with_flushed_torn_tail(tmp_path):
    from repro.traces.io import write_jobs

    path = str(tmp_path / "jobs.txt")
    ref = str(tmp_path / "ref.txt")
    jobs = _jobs(6)
    write_jobs(ref, jobs[:3])
    observed = []

    def kill():
        # What a real SIGKILL would leave on disk at this instant: the
        # flushed prefix in the .tmp sibling, no destination file yet.
        observed.append((os.path.getsize(path + ".tmp"),
                         os.path.exists(path)))

    plan = FaultPlan([{"target": "jobs_writer", "kind": "kill", "at": 3}])
    n = write_jobs(path, jobs,
                   wrap=trace_writer_wrap(plan, "jobs_writer", kill=kill))
    # The kill hook saw exactly the first three records, already flushed,
    # and the destination untouched -- the torn-.tmp crash signature.
    assert observed == [(os.path.getsize(ref), False)]
    assert n == len(jobs)  # the surviving process finished normally


def test_torn_gzip_trace_tail_survives_reliable_stream(tmp_path):
    """The headline regression: a writer killed mid-append leaves a jobs
    trace whose final gzip member is truncated.  The reliable stream must
    deliver every record before the tear exactly once, let the torn
    source die gracefully, and keep the other feeds flowing."""
    from repro.cli.workspace import save_workspace
    from repro.stream.events import EVENT_JOB
    from repro.stream.reliability import ReliableEventStream, RetryPolicy
    from repro.synth import TitanConfig, generate_dataset

    dataset = generate_dataset(TitanConfig(n_users=15, seed=3))
    clean_ws = str(tmp_path / "clean")
    torn_ws = str(tmp_path / "torn")
    for ws in (clean_ws, torn_ws):
        save_workspace(dataset, ws, n_shards=1)

    def stream(ws):
        return ReliableEventStream(
            ws, retry=RetryPolicy(max_attempts=2, base_delay=0.0,
                                  max_delay=0.0, jitter=0.0),
            sleep=lambda s: None)

    clean = list(stream(clean_ws))
    jobs_path = os.path.join(torn_ws, "jobs.txt.gz")
    # Tear repeatedly until the cut is deep enough to eat real records,
    # not just the 8-byte gzip trailer.
    size0 = os.path.getsize(jobs_path)
    while size0 - os.path.getsize(jobs_path) < 256:
        corrupt_file(jobs_path, "torn_tail", seed=13)

    torn = stream(torn_ws)
    events = list(torn)

    clean_jobs = [ev for ev in clean if ev.kind == EVENT_JOB]
    got_jobs = [ev for ev in events if ev.kind == EVENT_JOB]
    # Every job decoded before the tear is delivered, in order, once.
    assert got_jobs == clean_jobs[:len(got_jobs)]
    assert 0 < len(got_jobs) < len(clean_jobs)
    # The other feeds are untouched by the dying jobs source.
    assert ([ev for ev in events if ev.kind != EVENT_JOB]
            == [ev for ev in clean if ev.kind != EVENT_JOB])
    report = torn.report()
    jobs_info = report["sources"]["jobs"]
    assert jobs_info["health"] == "dead"
    assert "jobs" in report["held_watermarks"]
    assert jobs_info["last_error"] is not None
    assert torn.degraded
    # A torn tail is an I/O failure, not bad data: nothing quarantined.
    assert torn.quarantine.total == 0
