"""Equivalence suite: the columnar FastEmulator must reproduce the
reference Emulator bit for bit, and the parallel lifetime sweep must
match the serial one exactly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cache_policy import JobResidencyIndex, ScratchAsCachePolicy
from repro.core.config import RetentionConfig
from repro.core.exemption import ExemptionList
from repro.core.flt import FixedLifetimePolicy
from repro.core.retention import ActiveDRPolicy
from repro.core.value_based import ValueBasedPolicy
from repro.emulation import (
    ComparisonRunner,
    CompiledTrace,
    Emulator,
    EmulatorConfig,
    FastEmulator,
    compile_dataset,
    normalize_policies,
    replay_bounds,
    run_lifetime_sweep,
)
from repro.synth.titan import TitanConfig, generate_dataset


def assert_metrics_equal(fast, ref):
    assert np.array_equal(fast.accesses, ref.accesses)
    assert np.array_equal(fast.misses, ref.misses)
    for cls, series in ref.group_misses.items():
        assert np.array_equal(fast.group_misses[cls], series), cls


def assert_results_equal(fast, ref):
    assert fast.policy == ref.policy
    assert fast.lifetime_days == ref.lifetime_days
    assert_metrics_equal(fast.metrics, ref.metrics)
    assert len(fast.reports) == len(ref.reports)
    for fr, rr in zip(fast.reports, ref.reports):
        assert fr == rr
    assert fast.group_count_history == ref.group_count_history
    assert fast.final_classes == ref.final_classes
    assert fast.final_total_bytes == ref.final_total_bytes
    assert fast.final_file_count == ref.final_file_count


def run_both(dataset, policy_factory, emu_config, *,
             config=None, exemptions=None):
    config = config or RetentionConfig()
    known = [u.uid for u in dataset.users]
    start, end = replay_bounds(dataset)
    ref = Emulator(policy_factory(config, dataset), config.activeness,
                   emu_config, exemptions).run(
        dataset.fresh_filesystem(), dataset.accesses, dataset.jobs,
        dataset.publications, start, end, known_uids=known)
    compiled = compile_dataset(dataset)
    fast = FastEmulator(policy_factory(config, dataset), config.activeness,
                        emu_config, exemptions).run(compiled,
                                                    known_uids=known)
    return fast, ref


@pytest.fixture(scope="module")
def dataset(tiny_dataset):
    return tiny_dataset


POLICIES = [
    ("flt", lambda cfg, ds: FixedLifetimePolicy(cfg)),
    ("flt-target",
     lambda cfg, ds: FixedLifetimePolicy(cfg, enforce_target=True)),
    ("activedr", lambda cfg, ds: ActiveDRPolicy(cfg)),
    ("value", lambda cfg, ds: ValueBasedPolicy(cfg)),
    ("cache", lambda cfg, ds: ScratchAsCachePolicy(
        cfg, residency=JobResidencyIndex(ds.jobs))),
]


@pytest.mark.parametrize("apply_creates", [True, False])
@pytest.mark.parametrize("restore_on_miss", [True, False])
@pytest.mark.parametrize("policy_factory",
                         [p for _, p in POLICIES],
                         ids=[name for name, _ in POLICIES])
def test_fast_matches_reference(dataset, policy_factory, apply_creates,
                                restore_on_miss):
    emu_config = EmulatorConfig(apply_creates=apply_creates,
                                restore_on_miss=restore_on_miss)
    fast, ref = run_both(dataset, policy_factory, emu_config)
    assert_results_equal(fast, ref)


@pytest.mark.parametrize("seed", [3, 77])
def test_fast_matches_reference_across_seeds(seed):
    ds = generate_dataset(TitanConfig(n_users=25, seed=seed))
    for _, policy_factory in POLICIES:
        fast, ref = run_both(ds, policy_factory, EmulatorConfig())
        assert_results_equal(fast, ref)


def test_fast_matches_reference_short_lifetime(dataset):
    # A short lifetime forces heavy purging, misses, and restores.
    config = RetentionConfig(lifetime_days=7.0)
    emu_config = EmulatorConfig(restore_on_miss=True)
    for _, policy_factory in POLICIES:
        fast, ref = run_both(dataset, policy_factory, emu_config,
                             config=config)
        assert_results_equal(fast, ref)


def test_fast_matches_reference_with_exemptions(dataset):
    paths = [p for p, _ in dataset.filesystem.iter_files()]
    exemptions = ExemptionList()
    for path in paths[::7]:
        exemptions.reserve_file(path)
    exemptions.reserve_directory(
        "/" + "/".join(paths[0].strip("/").split("/")[:2]))
    for _, policy_factory in POLICIES:
        fast, ref = run_both(dataset, policy_factory, EmulatorConfig(),
                             exemptions=exemptions)
        assert_results_equal(fast, ref)


def test_fast_emulator_rejects_unknown_policy(dataset):
    class OtherPolicy(FixedLifetimePolicy.__bases__[0]):  # RetentionPolicy
        name = "other"

        def run(self, fs, t_c, *, activeness=None, exemptions=None):
            raise NotImplementedError

    with pytest.raises(TypeError):
        FastEmulator(OtherPolicy())


def test_compiled_trace_is_reusable(dataset):
    compiled = compile_dataset(dataset)
    known = [u.uid for u in dataset.users]
    config = RetentionConfig()
    first = FastEmulator(ActiveDRPolicy(config), config.activeness).run(
        compiled, known_uids=known)
    second = FastEmulator(ActiveDRPolicy(config), config.activeness).run(
        compiled, known_uids=known)
    assert_results_equal(first, second)
    assert np.array_equal(compiled.snap_live,
                          np.array([m is not None for m in (
                              dataset.filesystem.stat(p)
                              for p in compiled.paths)]))


def test_comparison_runner_engines_agree(dataset):
    ref = ComparisonRunner(dataset, engine="reference").run()
    fast = ComparisonRunner(dataset, engine="fast").run()
    assert set(ref.results) == set(fast.results)
    for name, result in ref.results.items():
        assert_results_equal(fast.results[name], result)


def test_comparison_runner_rejects_unknown_engine(dataset):
    with pytest.raises(ValueError):
        ComparisonRunner(dataset, engine="warp")


def test_comparison_runner_spectrum_engines_agree(dataset):
    ref = ComparisonRunner(dataset, policies="spectrum",
                           engine="reference").run()
    fast = ComparisonRunner(dataset, policies="spectrum",
                            engine="fast").run()
    assert set(ref.results) == {"FLT", "ActiveDR", "ValueBased",
                                "ScratchAsCache"}
    assert set(ref.results) == set(fast.results)
    for name, result in ref.results.items():
        assert_results_equal(fast.results[name], result)


def test_normalize_policies_aliases():
    assert normalize_policies("spectrum") == (
        "FLT", "ActiveDR", "ValueBased", "ScratchAsCache")
    assert normalize_policies("all") == normalize_policies("spectrum")
    assert normalize_policies(("value", "CACHE", "adr", "flt")) == (
        "ValueBased", "ScratchAsCache", "ActiveDR", "FLT")
    assert normalize_policies(("flt", "FixedLifetime")) == ("FLT",)
    with pytest.raises(ValueError):
        normalize_policies(("flt", "lru"))
    with pytest.raises(ValueError):
        normalize_policies(())


def test_fast_emulator_rejects_custom_value_function():
    def my_value(path, meta, now):
        return float(meta.size)

    with pytest.raises(TypeError):
        FastEmulator(ValueBasedPolicy(value_function=my_value))


def test_spectrum_sweep_matches_per_policy_runs(dataset):
    # A spectrum sweep shares one compiled trace and one residency index
    # across lifetimes; results must equal independent per-policy runs.
    lifetimes = (30.0, 90.0)
    sweep = run_lifetime_sweep(dataset, lifetimes, engine="fast",
                               policies="spectrum")
    for lifetime in lifetimes:
        assert set(sweep[lifetime].results) == {
            "FLT", "ActiveDR", "ValueBased", "ScratchAsCache"}
    solo = run_lifetime_sweep(dataset, lifetimes, engine="fast",
                              policies=("value", "cache"))
    for lifetime in lifetimes:
        for name in ("ValueBased", "ScratchAsCache"):
            assert_results_equal(solo[lifetime].results[name],
                                 sweep[lifetime].results[name])


def sweep_equal(a, b):
    assert set(a) == set(b)
    for lifetime in a:
        for name in a[lifetime].results:
            assert_results_equal(b[lifetime].results[name],
                                 a[lifetime].results[name])


def test_parallel_sweep_matches_serial(dataset):
    lifetimes = (30.0, 90.0)
    serial = run_lifetime_sweep(dataset, lifetimes, engine="fast")
    parallel = run_lifetime_sweep(dataset, lifetimes, engine="fast",
                                  n_ranks=2)
    sweep_equal(serial, parallel)


def test_parallel_sweep_matches_serial_reference_engine(dataset):
    lifetimes = (30.0, 60.0, 90.0)
    serial = run_lifetime_sweep(dataset, lifetimes)
    parallel = run_lifetime_sweep(dataset, lifetimes, n_ranks=2)
    sweep_equal(serial, parallel)
