"""Tests for histograms, box stats, and table formatting."""

import numpy as np
import pytest

from repro.analysis import (
    MISS_RATIO_RANGES,
    BoxStats,
    box_stats,
    days_above,
    days_per_range,
    format_bytes,
    format_table,
    percent,
    range_labels,
    series_block,
)


# ---------------------------------------------------------------- histogram

def test_ranges_match_paper_bins():
    assert len(MISS_RATIO_RANGES) == 11
    assert MISS_RATIO_RANGES[0] == (0.01, 0.05)
    assert MISS_RATIO_RANGES[-1] == (0.90, 1.00)


def test_range_labels():
    labels = range_labels()
    assert labels[0] == "1%-5%"
    assert labels[2] == "10%-20%"
    assert labels[-1] == "90%-100%"


def test_days_per_range_binning():
    ratios = np.asarray([0.0, 0.005, 0.01, 0.03, 0.05, 0.07, 0.5, 0.95, 1.0])
    counts = days_per_range(ratios)
    # 0.01, 0.03, 0.05 in the first bin (inclusive both edges for bin 0).
    assert counts[0] == 3
    assert counts[1] == 1          # 0.07
    assert counts[5] == 1          # 0.5 in (40%, 50%]
    assert counts[4] == 0
    assert counts[-1] == 2         # 0.95 and 1.0
    # Sub-1% days fall outside every bin.
    assert sum(counts) == 7


def test_days_per_range_half_open_edges():
    # 0.05 belongs to 1-5%, not 5-10%; 0.10 belongs to 5-10%.
    counts = days_per_range(np.asarray([0.05, 0.10]))
    assert counts[0] == 1 and counts[1] == 1 and counts[2] == 0


def test_days_above():
    ratios = np.asarray([0.01, 0.05, 0.06, 0.5])
    assert days_above(ratios, 0.05) == 2
    assert days_above(ratios, 0.0) == 4


# ---------------------------------------------------------------- box stats

def test_box_stats_basic():
    stats = box_stats([1.0, 2.0, 3.0, 4.0, 5.0])
    assert stats.minimum == 1.0 and stats.maximum == 5.0
    assert stats.median == 3.0
    assert stats.mean == 3.0
    assert stats.q1 == 2.0 and stats.q3 == 4.0
    assert stats.count == 5


def test_box_stats_empty():
    stats = box_stats([])
    assert stats == BoxStats(0, 0, 0, 0, 0, 0, 0)


def test_box_stats_accepts_generators():
    stats = box_stats(x / 10 for x in range(11))
    assert stats.median == pytest.approx(0.5)


# ---------------------------------------------------------------- tables

def test_format_bytes():
    assert format_bytes(0) == "0.00 B"
    assert format_bytes(1536) == "1.50 KiB"
    assert format_bytes(1 << 50) == "1.00 PiB"
    assert format_bytes(-(1 << 20)) == "-1.00 MiB"


def test_percent():
    assert percent(0.3742) == "37.42%"
    assert percent(-0.05, digits=1) == "-5.0%"


def test_format_table_alignment():
    out = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert all(len(line) == len(lines[0]) for line in lines[1:])
    assert "long-name" in lines[3]


def test_format_table_title():
    out = format_table(["a"], [[1]], title="Table 9")
    assert out.splitlines()[0] == "Table 9"


def test_series_block():
    out = series_block("Misses", ["jan", "feb"], [3, 4])
    assert "jan: 3" in out and "feb: 4" in out
