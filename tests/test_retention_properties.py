"""Property-based invariants of the retention policies.

Random file systems and random user ranks, checked against the
invariants every retention policy must preserve:

* byte conservation: purged + remaining == initial, always;
* exemption safety: reserved paths are never purged;
* target safety: ActiveDR never purges (meaningfully) past the target;
* monotonicity: a longer lifetime never purges more under FLT;
* dominance: an active user never loses a file that a same-profile
  inactive user keeps.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ActiveDRPolicy,
    ExemptionList,
    FixedLifetimePolicy,
    RetentionConfig,
    UserActiveness,
)
from repro.vfs import DAY_SECONDS, FileMeta, VirtualFileSystem

NOW = 1_467_331_200


@st.composite
def _filesystem(draw):
    """A small random FS: up to 5 users x up to 8 files, varied ages."""
    n_users = draw(st.integers(1, 5))
    fs = VirtualFileSystem()
    for uid in range(1, n_users + 1):
        n_files = draw(st.integers(1, 8))
        for i in range(n_files):
            age_days = draw(st.integers(0, 400))
            size = draw(st.integers(1, 10_000))
            atime = NOW - age_days * DAY_SECONDS
            fs.add_file(f"/s/u{uid}/f{i}",
                        FileMeta(size, atime, atime, atime, uid))
    fs.freeze_capacity()
    return fs


@st.composite
def _activeness_for(draw, fs):
    out = {}
    for uid in fs.uids():
        kind = draw(st.sampled_from(["none", "inactive", "active", "mixed"]))
        if kind == "none":
            out[uid] = UserActiveness(uid)
        elif kind == "inactive":
            out[uid] = UserActiveness(uid, log_op=-math.inf, log_oc=-math.inf,
                                      has_op=True, has_oc=True,
                                      last_ts=draw(st.integers(0, NOW)))
        elif kind == "active":
            out[uid] = UserActiveness(
                uid, log_op=draw(st.floats(0.0, 5.0)),
                log_oc=draw(st.floats(0.0, 5.0)),
                has_op=True, has_oc=True, last_ts=NOW)
        else:
            out[uid] = UserActiveness(
                uid, log_op=draw(st.floats(-3.0, 3.0)),
                log_oc=draw(st.floats(-3.0, 3.0)),
                has_op=True, has_oc=True, last_ts=draw(st.integers(0, NOW)))
    return out


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_bytes_conserved_by_both_policies(data):
    fs = data.draw(_filesystem())
    activeness = data.draw(_activeness_for(fs))
    initial = fs.total_bytes
    for policy in (FixedLifetimePolicy(RetentionConfig()),
                   ActiveDRPolicy(RetentionConfig())):
        replica = fs.replicate()
        report = policy.run(replica, NOW, activeness=activeness)
        assert replica.total_bytes + report.purged_bytes_total == initial
        assert report.retained_bytes_total == replica.total_bytes
        assert report.retained_files_total == replica.file_count


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_exempt_paths_always_survive(data):
    fs = data.draw(_filesystem())
    activeness = data.draw(_activeness_for(fs))
    paths = [p for p, _ in fs.iter_files()]
    reserved = data.draw(st.lists(st.sampled_from(paths), min_size=1,
                                  max_size=min(len(paths), 5), unique=True))
    exemptions = ExemptionList(paths=reserved)
    for policy in (FixedLifetimePolicy(RetentionConfig()),
                   ActiveDRPolicy(RetentionConfig(
                       purge_target_utilization=0.0))):
        replica = fs.replicate()
        policy.run(replica, NOW, activeness=activeness,
                   exemptions=exemptions)
        for path in reserved:
            assert path in replica


@settings(max_examples=40, deadline=None)
@given(st.data(), st.floats(0.0, 1.0))
def test_activedr_never_meaningfully_overshoots_target(data, target):
    fs = data.draw(_filesystem())
    activeness = data.draw(_activeness_for(fs))
    config = RetentionConfig(purge_target_utilization=target)
    replica = fs.replicate()
    report = ActiveDRPolicy(config).run(replica, NOW, activeness=activeness)
    # Overshoot is bounded by the last purged file: remove it from the
    # account and the total must be under the target.
    if report.purged_files_total > 0:
        largest = max(t.purged_bytes for t in report.groups.values())
        assert (report.purged_bytes_total - largest
                <= max(report.target_bytes, 0) or report.purged_bytes_total
                <= report.target_bytes + largest)
    if report.target_bytes <= 0:
        assert report.purged_files_total == 0


@settings(max_examples=30, deadline=None)
@given(st.data(), st.integers(1, 120), st.integers(0, 200))
def test_flt_lifetime_monotonicity(data, short_lifetime, extra_days):
    fs = data.draw(_filesystem())
    long_lifetime = short_lifetime + extra_days
    a = fs.replicate()
    b = fs.replicate()
    rep_short = FixedLifetimePolicy(
        RetentionConfig(lifetime_days=short_lifetime)).run(a, NOW)
    rep_long = FixedLifetimePolicy(
        RetentionConfig(lifetime_days=long_lifetime)).run(b, NOW)
    assert rep_short.purged_files_total >= rep_long.purged_files_total
    # Anything the long lifetime purged, the short one purged too.
    for path, _ in fs.iter_files():
        if path not in b:
            assert path not in a


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 400), st.floats(0.5, 5.0))
def test_active_user_keeps_what_inactive_loses(age_days, log_rank):
    """Same file, same age: if the active user's copy is purged, the
    inactive user's copy must be gone too (never the other way)."""
    fs = VirtualFileSystem()
    atime = NOW - age_days * DAY_SECONDS
    fs.add_file("/s/active/f", FileMeta(100, atime, atime, atime, 1))
    fs.add_file("/s/idle/f", FileMeta(100, atime, atime, atime, 2))
    fs.capacity_bytes = 100  # force a real purge target
    activeness = {
        1: UserActiveness(1, log_op=log_rank, log_oc=0.0,
                          has_op=True, has_oc=True, last_ts=NOW),
        2: UserActiveness(2, log_op=-math.inf, log_oc=-math.inf,
                          has_op=True, has_oc=True, last_ts=0),
    }
    ActiveDRPolicy(RetentionConfig()).run(fs, NOW, activeness=activeness)
    if "/s/active/f" not in fs:
        assert "/s/idle/f" not in fs
