"""Binary columnar batch-ingest suite (protocol v2).

Pins the wire contract of the negotiated batch path end to end:

1. the ``hello`` handshake grants the capability intersection and a
   clamped batch-frame cap, and a v2 client facing a v1-only server
   falls back to JSON event frames (or, on the no-fallback
   ``publish_batches`` path, fails loudly);
2. an oversized length prefix is refused *before* any body bytes are
   buffered, under the negotiated cap, not the v1 default;
3. malformed rows inside an otherwise well-formed binary batch are
   diverted to the quarantine with the same dead-letter reason codes a
   v1 peer would produce, and the engine result stays bit-identical to
   a clean file replay;
4. torn and CRC-failing batch frames (via the faults harness) divert
   without poisoning the connection's earlier or -- for a CRC failure,
   where the envelope is still in sync -- later frames;
5. the admin plane reports TARE-style decode and trigger latency tails.
"""

from __future__ import annotations

import time

import pytest

from repro.emulation import replay_bounds
from repro.faults import corrupt_frame_bytes
from repro.server import (AdminServer, MultiTenantService,
                          NetworkEventStream, SocketListener, TenantSpec,
                          admin_request, publish_batches, publish_events)
from repro.server.ingest import PublishRefused
from repro.server.protocol import (BATCH_MAX_FRAME_BYTES, CAP_BATCH,
                                   CAP_ZLIB, PROTOCOL_V2, FrameError,
                                   FrameReader, connect_socket,
                                   encode_batch, encode_batch_frame,
                                   write_frame)
from repro.stream import dataset_event_stream
from repro.stream.batch import BatchBuilder
from repro.stream.events import EVENT_ACCESS, EVENT_JOB, StreamEvent
from repro.stream.reliability.quarantine import (REASON_CORRUPT_FRAME,
                                                 REASON_UNKNOWN_UID,
                                                 REASON_UNPARSABLE)
from repro.traces.schema import AppAccessRecord, JobRecord
from repro.synth import TitanConfig, generate_dataset


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(TitanConfig(n_users=40, seed=7))


@pytest.fixture(scope="module")
def events(dataset):
    return list(dataset_event_stream(dataset))


@pytest.fixture(scope="module")
def known(dataset):
    return [u.uid for u in dataset.users]


def make_service(dataset, known):
    spec = TenantSpec(name="activedr", policy="activedr")
    start, end = replay_bounds(dataset)
    return MultiTenantService(
        [(spec, spec.build_policy())], snapshot_fs=dataset.filesystem,
        replay_start=start, replay_end=end, known_uids=known)


def assert_same_result(got, want, context):
    assert got.reports == want.reports, context
    assert got.final_classes == want.final_classes, context
    assert got.final_total_bytes == want.final_total_bytes, context
    assert got.final_file_count == want.final_file_count, context


def encode_events(rows):
    builder = BatchBuilder()
    builder.extend(rows)
    return encode_batch(builder.build())


def v2_connect(address, source, *, caps=(CAP_BATCH,),
               want=BATCH_MAX_FRAME_BYTES):
    sock = connect_socket(address, timeout=10)
    reader = FrameReader(sock)
    write_frame(sock, {"type": "hello", "source": source, "producer": "t",
                       "protocol": PROTOCOL_V2, "capabilities": list(caps),
                       "max_frame_bytes": int(want)})
    return sock, reader, reader.read_message()


def drain_rows(stream):
    """Total event rows the guarded merge delivers."""
    return sum(1 if type(item) is StreamEvent else item.n_rows
               for item in iter(stream))


def _wait(predicate, seconds, what):
    deadline = time.monotonic() + seconds
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {what}"
        time.sleep(0.01)


def _sock(tmp_path, name):
    return f"unix:{tmp_path / name}"


# ---------------------------------------------------------------------------
# negotiation


def test_hello_negotiation_grants_intersection_and_clamped_cap(tmp_path):
    address = _sock(tmp_path, "nego.sock")
    with SocketListener(address, expected={"jobs": 3},
                        max_batch_frame_bytes=1 << 20):
        # Ask for more than the listener ceiling, plus a capability this
        # build has never heard of: the grant is the intersection, the
        # cap is clamped to the ceiling.
        sock, _, ack = v2_connect(address, "jobs",
                                  caps=(CAP_BATCH, CAP_ZLIB, "warp-drive"),
                                  want=8 << 20)
        sock.close()
        assert ack["type"] == "ok" and ack["protocol"] == PROTOCOL_V2
        assert ack["capabilities"] == [CAP_BATCH, CAP_ZLIB]
        assert ack["max_frame_bytes"] == 1 << 20
        # A modest ask is granted verbatim ...
        sock, _, ack = v2_connect(address, "jobs", want=64 << 10)
        sock.close()
        assert ack["max_frame_bytes"] == 64 << 10
        # ... and a degenerate one is floored, never zero or negative.
        sock, _, ack = v2_connect(address, "jobs", want=1)
        sock.close()
        assert ack["max_frame_bytes"] == 4096


def test_v2_publisher_falls_back_to_v1_only_server(tmp_path, events, known):
    address = _sock(tmp_path, "v1only.sock")
    rows = [ev for ev in events if ev.kind == EVENT_JOB][:50]
    with SocketListener(address, expected={"jobs": 1},
                        protocols=(1,)) as listener:
        stream = NetworkEventStream(listener, known_uids=known)
        # publish_events offers v2+batch, is told "unsupported protocol",
        # and silently reconnects on the v1 JSON path: same events,
        # no binary frames on the wire.
        assert publish_events(address, "jobs", rows, batch_size=8192) == 50
        assert drain_rows(stream) == 50
        assert listener.batches_received == 0
        assert stream.quarantine.total == 0


def test_publish_batches_refuses_v1_only_server(tmp_path, events):
    address = _sock(tmp_path, "refuse.sock")
    payload = encode_events(events[:10])
    with SocketListener(address, expected={"jobs": 1}, protocols=(1,)):
        # The load-generator path has no fallback by design: a server
        # that cannot speak v2 fails the publish loudly.
        with pytest.raises(PublishRefused, match="unsupported protocol"):
            publish_batches(address, "jobs", [payload])


# ---------------------------------------------------------------------------
# frame cap


def test_oversized_length_prefix_refused_not_allocated(tmp_path, known):
    address = _sock(tmp_path, "cap.sock")
    with SocketListener(address, expected={"jobs": 1},
                        max_batch_frame_bytes=8192) as listener:
        stream = NetworkEventStream(listener, known_uids=known)
        sock, _, ack = v2_connect(address, "jobs", want=8192)
        assert ack["max_frame_bytes"] == 8192
        # A prefix past the negotiated cap: the reader refuses on the
        # header alone (no body bytes are ever buffered -- none are even
        # sent) and the connection dies with one dead-letter record.
        sock.sendall(b"b20000\n")
        _wait(lambda: stream.quarantine.total == 1, 10,
              "the oversized frame to be diverted")
        sock.close()
        assert stream.quarantine.by_reason == {REASON_UNPARSABLE: 1}


def test_frame_reader_refuses_oversized_prefix_without_body():
    import socket as socketlib
    left, right = socketlib.socketpair()
    try:
        reader = FrameReader(right, max_frame_bytes=4096)
        # Only the header is on the wire; a reader that tried to buffer
        # the claimed body would block here instead of raising.
        left.sendall(b"b999999999\n")
        with pytest.raises(FrameError, match="out of range"):
            reader.read()
    finally:
        left.close()
        right.close()


# ---------------------------------------------------------------------------
# malformed batches


def test_malformed_batch_rows_quarantined_with_reason_codes(
        tmp_path, dataset, events, known):
    clean = make_service(dataset, known).run(iter(events))

    # Splice two poison rows into the stream at monotone positions: a
    # job a v1 decode_event would refuse (node count zero -- forged
    # post-build, the record class refuses to construct it) and an
    # access by a uid outside the known set.
    tainted = list(events)
    k = next(i for i, ev in enumerate(tainted)
             if ev.kind == EVENT_JOB and i > len(tainted) // 3)
    anchor = tainted[k]
    forged_id = 999_999_991
    bad_job = JobRecord(job_id=forged_id, uid=anchor.payload.uid,
                        submit_ts=anchor.ts,
                        start_ts=anchor.payload.start_ts,
                        end_ts=anchor.payload.end_ts, num_nodes=1)
    tainted.insert(k + 1, StreamEvent(anchor.ts, EVENT_JOB, bad_job))
    m = (2 * len(tainted)) // 3
    bad_acc = AppAccessRecord(ts=tainted[m].ts, uid=977_001,
                              path="/intruder/file")
    tainted.insert(m + 1, StreamEvent(bad_acc.ts, EVENT_ACCESS, bad_acc))

    builder = BatchBuilder()
    builder.extend(tainted)
    batch = builder.build()
    jrow = sum(1 for ev in tainted[:k + 1] if ev.kind == EVENT_JOB)
    assert batch.job_id[jrow] == forged_id
    batch.job_nodes[jrow] = 0

    address = _sock(tmp_path, "poison.sock")
    with SocketListener(address, expected={"all": 1}) as listener:
        stream = NetworkEventStream(listener, known_uids=known)
        sent = publish_batches(address, "all", [batch],
                               frame_cap=BATCH_MAX_FRAME_BYTES)
        assert sent == len(tainted)
        service = make_service(dataset, known)
        results = service.run(iter(stream))
        assert listener.batch_rows_received == len(tainted)

    # Exactly the two poison rows are dead-lettered, each under the
    # reason code its failure mode demands, and the engine result is
    # bit-identical to the clean file replay.
    assert stream.quarantine.by_reason == {REASON_UNPARSABLE: 1,
                                           REASON_UNKNOWN_UID: 1}
    assert service.cursor == len(events)
    assert_same_result(results["activedr"], clean["activedr"],
                       "poisoned-batch run")


# ---------------------------------------------------------------------------
# torn and CRC-failing frames (faults harness)


def test_crc_failing_batch_frame_diverts_and_stream_continues(
        tmp_path, events, known):
    chunks = [events[0:1000], events[1000:2000], events[2000:3000]]
    frames = [encode_batch_frame(encode_events(c)) for c in chunks]
    address = _sock(tmp_path, "crc.sock")
    with SocketListener(address, expected={"feed": 1}) as listener:
        stream = NetworkEventStream(listener, known_uids=known)
        sock, reader, ack = v2_connect(address, "feed")
        assert ack["type"] == "ok"
        # Frame 2 fails its CRC trailer; the envelope is intact, so the
        # reader stays in sync and frame 3 still lands.
        sock.sendall(frames[0]
                     + corrupt_frame_bytes(frames[1], "crc")
                     + frames[2])
        write_frame(sock, {"type": "end"})
        end_ack = reader.read_message()
        assert end_ack is not None and end_ack["type"] == "ok"
        sock.close()
        assert drain_rows(stream) == 2000
        assert listener.batches_received == 2
    assert stream.quarantine.by_reason == {REASON_CORRUPT_FRAME: 1}


def test_torn_batch_frame_diverts_tail_keeps_delivered_prefix(
        tmp_path, events, known):
    chunks = [events[0:1000], events[1000:2000]]
    frames = [encode_batch_frame(encode_events(c)) for c in chunks]
    address = _sock(tmp_path, "torn.sock")
    with SocketListener(address, expected={"feed": 1}) as listener:
        stream = NetworkEventStream(listener, known_uids=known)
        sock, _, ack = v2_connect(address, "feed")
        assert ack["type"] == "ok"
        # A producer killed mid-sendall: frame 2 stops short and the
        # connection closes inside the frame body.  Past the tear there
        # is no sync point, so the tail is one dead-letter record and
        # everything decoded before it stays delivered.
        sock.sendall(frames[0] + corrupt_frame_bytes(frames[1], "torn"))
        sock.close()
        _wait(lambda: stream.quarantine.total == 1, 10,
              "the torn frame to be diverted")
        listener.close()  # no end frame ever arrives; finish the source
        assert drain_rows(stream) == 1000
    assert stream.quarantine.by_reason == {REASON_UNPARSABLE: 1}


# ---------------------------------------------------------------------------
# admin latency tails


def test_admin_metrics_report_decode_and_trigger_tails(
        tmp_path, dataset, events, known):
    address = _sock(tmp_path, "feed.sock")
    payloads = [encode_events(events[i:i + 8192])
                for i in range(0, len(events), 8192)]
    with SocketListener(address, expected={"all": 1}) as listener:
        stream = NetworkEventStream(listener, known_uids=known)
        publish_batches(address, "all", payloads)
        service = make_service(dataset, known)
        service.run(iter(stream))
        admin_at = _sock(tmp_path, "admin.sock")
        with AdminServer(admin_at, service, stream=stream):
            metrics = admin_request(admin_at, {"cmd": "metrics"})
    assert metrics["ok"], metrics
    decode = metrics["batch_decode_latency"]
    assert decode["count"] == len(payloads)
    assert 0.0 <= decode["p50"] <= decode["p95"] <= decode["p99"]
    trigger = metrics["trigger_latency"]
    assert trigger["count"] >= 1
    assert 0.0 <= trigger["p50"] <= trigger["p99"] <= trigger["max"]
