"""Tests for trace schemas and log I/O."""

import pytest

from repro.traces import (
    AppAccessRecord,
    JobRecord,
    PublicationRecord,
    UserRecord,
    read_app_log,
    read_jobs,
    read_publications,
    read_users,
    write_app_log,
    write_jobs,
    write_publications,
    write_users,
)


# ---------------------------------------------------------------- schema

def test_user_record_validation():
    with pytest.raises(ValueError):
        UserRecord(-1, "bad", 0)


def test_job_record_core_hours():
    job = JobRecord(1, 2, 100, 200, 200 + 3600, num_nodes=4,
                    cores_per_node=16)
    assert job.num_cores == 64
    assert job.duration_seconds == 3600
    assert job.core_hours() == pytest.approx(64.0)


def test_job_record_time_ordering_enforced():
    with pytest.raises(ValueError):
        JobRecord(1, 2, 100, 90, 200, 1)     # start before submit
    with pytest.raises(ValueError):
        JobRecord(1, 2, 100, 200, 150, 1)    # end before start


def test_job_record_counts_enforced():
    with pytest.raises(ValueError):
        JobRecord(1, 2, 0, 0, 10, 0)


def test_app_record_ops():
    for op in ("access", "create", "touch"):
        AppAccessRecord(0, 1, "/p", op)
    with pytest.raises(ValueError):
        AppAccessRecord(0, 1, "/p", "delete")


def test_publication_author_score_eq8():
    # c=4, n=3 authors: scores (c+1)*(n-i+1) for 1-based i -> 15, 10, 5.
    pub = PublicationRecord(1, 0, [10, 20, 30], citations=4)
    assert pub.author_score(10) == 15.0
    assert pub.author_score(20) == 10.0
    assert pub.author_score(30) == 5.0


def test_publication_single_author_score():
    # c=0, n=1: (0+1)*(1-1+1) = 1.
    pub = PublicationRecord(1, 0, [5], citations=0)
    assert pub.author_score(5) == 1.0


def test_publication_non_author_raises():
    pub = PublicationRecord(1, 0, [5], citations=0)
    with pytest.raises(ValueError):
        pub.author_score(99)


def test_publication_validation():
    with pytest.raises(ValueError):
        PublicationRecord(1, 0, [1, 1], citations=0)
    with pytest.raises(ValueError):
        PublicationRecord(1, 0, [1], citations=-1)


# ---------------------------------------------------------------- I/O

def test_users_roundtrip(tmp_path):
    users = [UserRecord(i, f"user{i}", 1000 + i) for i in range(5)]
    path = str(tmp_path / "users.txt")
    assert write_users(path, users) == 5
    assert list(read_users(path)) == users


def test_jobs_roundtrip_gz(tmp_path):
    jobs = [JobRecord(i, i % 3, 100 * i, 100 * i + 5, 100 * i + 65, i + 1, 16)
            for i in range(8)]
    path = str(tmp_path / "jobs.txt.gz")
    assert write_jobs(path, jobs) == 8
    assert list(read_jobs(path)) == jobs


def test_app_log_roundtrip_preserves_pipes_in_nothing(tmp_path):
    accesses = [AppAccessRecord(10, 1, "/scratch/u/f.h5", "access"),
                AppAccessRecord(11, 2, "/scratch/u/new.out", "create"),
                AppAccessRecord(12, 3, "/scratch/u/old.dat", "touch")]
    path = str(tmp_path / "apps.log")
    write_app_log(path, accesses)
    assert list(read_app_log(path)) == accesses


def test_publications_roundtrip(tmp_path):
    pubs = [PublicationRecord(0, 500, [1, 2, 3], 12),
            PublicationRecord(1, 900, [4], 0)]
    path = str(tmp_path / "pubs.txt")
    write_publications(path, pubs)
    assert list(read_publications(path)) == pubs


def test_empty_file_roundtrip(tmp_path):
    path = str(tmp_path / "empty.txt")
    assert write_jobs(path, []) == 0
    assert list(read_jobs(path)) == []


def test_large_app_log_roundtrip_chunked_writes(tmp_path):
    # Exceeds the writelines chunk size several times over, gzip included.
    n = 120_000
    accesses = [AppAccessRecord(1_000 + i, i % 500,
                                f"/scratch/u{i % 500}/run{i // 500}/out.dat",
                                ("access", "create", "touch")[i % 3])
                for i in range(n)]
    path = str(tmp_path / "apps.log.gz")
    assert write_app_log(path, accesses) == n
    assert list(read_app_log(path)) == accesses
