"""TLS on the ingest socket: encrypted publish, plaintext rejection."""

from __future__ import annotations

import shutil
import subprocess
import time

import pytest

from repro.server import SocketListener, publish_events
from repro.server.ingest import _END
from repro.server.protocol import (FrameReader, connect_socket,
                                   make_client_ssl_context,
                                   make_server_ssl_context, write_frame)
from repro.stream import EVENT_JOB, EventBatch, StreamEvent
from repro.traces import JobRecord


@pytest.fixture(scope="module")
def cert_pair(tmp_path_factory):
    if shutil.which("openssl") is None:
        pytest.skip("openssl not available to mint a test certificate")
    d = tmp_path_factory.mktemp("tls")
    cert, key = str(d / "cert.pem"), str(d / "key.pem")
    subprocess.run(
        ["openssl", "req", "-x509", "-newkey", "rsa:2048", "-nodes",
         "-keyout", key, "-out", cert, "-days", "2",
         "-subj", "/CN=activedr-test"],
        check=True, capture_output=True)
    return cert, key


def _events(n):
    return [StreamEvent(100 + i, EVENT_JOB,
                        JobRecord(i, i % 7, 100 + i, 101 + i, 102 + i,
                                  1, 16))
            for i in range(n)]


def _received_rows(listener):
    src = listener.sources()[0]
    rows = 0
    while True:
        entry = src.queue.get(timeout=30)
        if entry is _END:
            return rows
        _seq, item = entry
        rows += item.n if isinstance(item, EventBatch) else 1


def test_publish_over_tls_with_pinned_ca(cert_pair):
    cert, key = cert_pair
    server_ctx = make_server_ssl_context(cert, key)
    with SocketListener("127.0.0.1:0", expected={"jobs": 1},
                        ssl_context=server_ctx) as listener:
        sent = publish_events(
            listener.address, "jobs", _events(50), batch_size=16,
            ssl_context=make_client_ssl_context(cafile=cert))
        assert sent == 50
        assert _received_rows(listener) == 50
    assert int(listener.tls_handshake_failures) == 0


def test_plaintext_client_refused_by_tls_listener(cert_pair):
    cert, key = cert_pair
    server_ctx = make_server_ssl_context(cert, key)
    with SocketListener("127.0.0.1:0", expected={"jobs": 1},
                        ssl_context=server_ctx) as listener:
        with pytest.raises(Exception):
            publish_events(listener.address, "jobs", _events(5),
                           batch_size=4)
        # The refusal is counted (the server-side handshake fails in
        # the reader thread, possibly after the client gave up) and
        # nothing was admitted.
        deadline = time.monotonic() + 30
        while (int(listener.tls_handshake_failures) == 0
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert int(listener.tls_handshake_failures) >= 1
        assert int(listener.batch_rows_received) == 0


def test_busy_refusal_over_tls_does_not_block_accepts(cert_pair):
    """Refusing over-quota clients must not stall the accept loop.

    The busy refusal needs a server-side TLS handshake before the error
    frame can be written; it runs in a short-lived thread, so clients
    that never start their handshake cannot serialize accepts.
    """
    cert, key = cert_pair
    server_ctx = make_server_ssl_context(cert, key)
    client_ctx = make_client_ssl_context(cafile=cert)
    with SocketListener("127.0.0.1:0", expected={"jobs": 1},
                        ssl_context=server_ctx,
                        max_connections=1) as listener:
        hog = connect_socket(listener.address, timeout=10.0,
                             ssl_context=client_ctx)
        try:
            write_frame(hog, {"type": "hello", "protocol": 1,
                              "source": "jobs", "producer": "hog"})
            assert FrameReader(hog).read()["type"] == "ok"
            # Three clients connect but never speak TLS: each refusal
            # handshake stalls for its full 1s timeout.
            stalled = [connect_socket(listener.address, timeout=10.0)
                       for _ in range(3)]
            # A polite TLS client still gets its busy frame promptly;
            # were the stalled handshakes run on the accept loop this
            # would take > 3s.
            t0 = time.monotonic()
            polite = connect_socket(listener.address, timeout=10.0,
                                    ssl_context=client_ctx)
            err = FrameReader(polite).read()
            elapsed = time.monotonic() - t0
            assert err["type"] == "error" and err["retryable"]
            assert "busy" in err["reason"]
            assert elapsed < 2.5
            polite.close()
            for s in stalled:
                s.close()
            assert int(listener.busy_refusals) >= 4
        finally:
            hog.close()


def test_tls_client_against_plaintext_listener_fails(cert_pair):
    cert, _key = cert_pair
    with SocketListener("127.0.0.1:0", expected={"jobs": 1}) as listener:
        with pytest.raises(Exception):
            publish_events(listener.address, "jobs", _events(5),
                           batch_size=4,
                           ssl_context=make_client_ssl_context(cafile=cert))
        assert int(listener.batch_rows_received) == 0
