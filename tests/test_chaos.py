"""Chaos suite: the service under scripted faults, end to end.

Three escalating guarantees, all pinned bit-for-bit against the batch
``FastEmulator``:

1. the ISSUE acceptance scenario -- truncated head checkpoint, a stalled
   source, and 1% malformed events, for every policy in the retention
   spectrum, driven through the real ``serve --resume`` CLI;
2. ``kill -9`` delivered at five seeded-random write calls *during*
   checkpoint writes, each followed by a successful resume;
3. the checkpoint chain invariant: at most K=3 links on disk at every
   instant of a full run, and every retained link passes verification.
"""

from __future__ import annotations

import glob
import gzip
import json
import os
import random
import signal
import subprocess
import sys

import pytest

from repro.analysis import render_emulation_summary
from repro.core import (ActiveDRPolicy, FixedLifetimePolicy,
                        JobResidencyIndex, RetentionConfig,
                        ScratchAsCachePolicy, ValueBasedPolicy)
from repro.emulation import FastEmulator, compile_dataset
from repro.faults import FaultPlan, FaultyIO, corrupt_file
from repro.stream import CheckpointManager, OnlineRetentionService
from repro.stream.checkpoint import load_checkpoint
from repro.stream.events import workspace_event_stream
from repro.cli.workspace import load_workspace, save_workspace
from repro.synth import TitanConfig, generate_dataset

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

N_USERS, SEED = 30, 7


@pytest.fixture(scope="module")
def chaos_workspace(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("chaos") / "ws")
    save_workspace(generate_dataset(TitanConfig(n_users=N_USERS, seed=SEED)),
                   directory, n_shards=1)
    return directory


def _policy(name, ws):
    config = RetentionConfig(lifetime_days=90.0,
                             purge_target_utilization=0.5)
    if name == "flt":
        return FixedLifetimePolicy(config), config
    if name == "activedr":
        return ActiveDRPolicy(config), config
    if name == "value":
        return ValueBasedPolicy(config), config
    return ScratchAsCachePolicy(
        config, residency=JobResidencyIndex(ws.jobs)), config


@pytest.fixture(scope="module")
def batch_summaries(chaos_workspace):
    """Fault-free batch FastEmulator summary text, per policy."""
    ws = load_workspace(chaos_workspace)
    compiled = compile_dataset(ws)
    known = [u.uid for u in ws.users]
    out = {}
    for name in ("flt", "activedr", "value", "cache"):
        policy, config = _policy(name, ws)
        result = FastEmulator(policy, config.activeness).run(
            compiled, known_uids=known)
        out[name] = render_emulation_summary(result)
    return out


def _serve(workspace, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    return subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--workspace", workspace,
         *extra],
        capture_output=True, text=True, env=env, timeout=300)


def _summary_of(stdout):
    """Drop serve's two status lines; the rest is the emulation summary."""
    return "\n".join(stdout.splitlines()[2:])


def _count_gz_lines(path):
    with gzip.open(path, "rt") as fh:
        return sum(1 for line in fh if line.strip())


def _head_checkpoint(ck_dir):
    return sorted(glob.glob(os.path.join(ck_dir, "checkpoint-*.npz")))[-1]


# ---------------------------------------------------------------------------
# 1. the acceptance scenario, across the whole policy spectrum


@pytest.mark.parametrize("policy", ["flt", "activedr", "value", "cache"])
def test_acceptance_faulty_resume_matches_batch(chaos_workspace,
                                                batch_summaries,
                                                tmp_path, policy):
    ck = str(tmp_path / "ck")
    first = _serve(chaos_workspace, "--policy", policy,
                   "--checkpoint-dir", ck, "--stop-after-events", "5500")
    assert first.returncode == 0, first.stderr

    # A torn write took the head checkpoint.
    corrupt_file(_head_checkpoint(ck), "truncate")

    # One stalled source + 1% malformed access events, seeded.
    n_accesses = _count_gz_lines(
        os.path.join(chaos_workspace, "app_log.txt.gz"))
    rng = random.Random(2021)
    malformed = rng.sample(range(n_accesses), n_accesses // 100)
    plan = {"seed": 7, "faults":
            [{"target": "jobs", "kind": "stall", "at": 50}]
            + [{"target": "accesses", "kind": "malformed", "at": at}
               for at in malformed]}
    plan_path = str(tmp_path / "plan.json")
    with open(plan_path, "w") as fh:
        json.dump(plan, fh)

    resumed = _serve(chaos_workspace, "--policy", policy,
                     "--checkpoint-dir", ck, "--resume",
                     "--fault-plan", plan_path)
    assert resumed.returncode == 0, resumed.stderr
    assert "failed verification" in resumed.stderr
    assert "rolling back" in resumed.stderr
    assert f"quarantined={len(malformed)}" in resumed.stderr
    assert _summary_of(resumed.stdout) == batch_summaries[policy]


# ---------------------------------------------------------------------------
# 2. kill -9 during checkpoint writes


def _fresh_service(ws_dir, manager):
    """The serve CLI's fresh-start construction, in process."""
    from repro.traces import read_users
    from repro.vfs import load_filesystem

    with open(os.path.join(ws_dir, "meta.json")) as fh:
        meta = json.load(fh)
    fs = load_filesystem(os.path.join(ws_dir, "snapshot"),
                         size_seed=int(meta.get("size_seed", 2021)),
                         capacity_bytes=None)
    known = [u.uid for u in read_users(
        os.path.join(ws_dir, "users.txt.gz"))]
    policy = ActiveDRPolicy(RetentionConfig(lifetime_days=90.0,
                                            purge_target_utilization=0.5))
    return OnlineRetentionService(
        policy, snapshot_fs=fs,
        replay_start=int(meta["replay_start"]),
        replay_end=int(meta["replay_end"]),
        known_uids=known, checkpoint_manager=manager)


def _checkpoint_write_bounds(ws_dir, probe_dir):
    """(start, end) cumulative write-call index of every checkpoint save.

    Serve's write sequence is deterministic, so counting an instrumented
    in-process run tells us exactly which absolute write index lands
    inside which checkpoint write in the subprocess.
    """
    plan = FaultPlan([])
    bounds = []

    class Recorder(CheckpointManager):
        def save(self, manifest, arrays):
            start = plan.counter("checkpoint#w").n
            path = super().save(manifest, arrays)
            bounds.append((start, plan.counter("checkpoint#w").n))
            return path

    manager = Recorder(probe_dir, retain=3,
                       opener=lambda p: FaultyIO(open(p, "wb"), plan,
                                                 "checkpoint"))
    service = _fresh_service(ws_dir, manager)
    service.run(workspace_event_stream(ws_dir))
    return bounds


def test_kill9_during_checkpoint_write_resumes_bit_identical(
        chaos_workspace, batch_summaries, tmp_path):
    bounds = _checkpoint_write_bounds(chaos_workspace,
                                      str(tmp_path / "probe"))
    assert len(bounds) >= 6, "expected a long checkpoint chain"
    # Save 0 must complete or there is nothing to resume from; every
    # later save is fair game for the kill.
    candidates = [(s, e) for s, e in bounds[1:] if e - s >= 6]
    rng = random.Random(20210815)
    kill_points = [rng.randrange(s + 2, e - 2)
                   for s, e in rng.sample(candidates, 5)]

    for kill_at in kill_points:
        ck = str(tmp_path / f"ck-{kill_at}")
        plan_path = str(tmp_path / f"plan-{kill_at}.json")
        with open(plan_path, "w") as fh:
            json.dump({"faults": [{"target": "checkpoint", "kind": "kill",
                                   "at": kill_at}]}, fh)
        killed = _serve(chaos_workspace, "--checkpoint-dir", ck,
                        "--fault-plan", plan_path)
        assert killed.returncode == -signal.SIGKILL, (
            f"kill at write {kill_at} did not fire: "
            f"rc={killed.returncode} stderr={killed.stderr}")
        chain = glob.glob(os.path.join(ck, "checkpoint-*.npz"))
        assert chain, "the kill landed before any complete checkpoint"

        resumed = _serve(chaos_workspace, "--checkpoint-dir", ck,
                         "--resume")
        assert resumed.returncode == 0, resumed.stderr
        assert _summary_of(resumed.stdout) == batch_summaries["activedr"], (
            f"resume after kill at write {kill_at} diverged from batch")


# ---------------------------------------------------------------------------
# 3. chain invariant: bounded and verified at every instant


def test_gc_bound_holds_and_all_links_verify(chaos_workspace, tmp_path):
    violations = []

    class Auditor(CheckpointManager):
        def save(self, manifest, arrays):
            path = super().save(manifest, arrays)
            links = self.paths()
            if len(links) > self.retain:
                violations.append(f"{len(links)} links after {path}")
            for link in links:
                try:
                    load_checkpoint(link, verify=True)
                except ValueError as exc:
                    violations.append(f"{link}: {exc}")
            return path

    manager = Auditor(str(tmp_path / "ck"), retain=3)
    service = _fresh_service(chaos_workspace, manager)
    result = service.run(workspace_event_stream(chaos_workspace))
    assert result is not None
    assert service.stats["checkpoints_written"] >= 6
    assert violations == []
