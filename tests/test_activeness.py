"""Tests for the activeness evaluation (Eqs. 1-6).

The scalar cases are hand-computed from the paper's equations; the
property tests pin the vectorized bulk evaluator to the scalar reference.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ActivenessEvaluator,
    ActivenessParams,
    Activity,
    ActivityLedger,
    JOB_SUBMISSION,
    PUBLICATION,
    SHELL_LOGIN,
    UserActiveness,
    evaluate_type_bulk,
    safe_exp,
    type_log_rank,
)
from repro.vfs import DAY_SECONDS

P7 = ActivenessParams(period_days=7)
L = P7.period_seconds
T_C = 1_000 * DAY_SECONDS  # an arbitrary "now" on a day boundary


# ---------------------------------------------------------------- params

def test_params_validation():
    with pytest.raises(ValueError):
        ActivenessParams(period_days=0)
    with pytest.raises(ValueError):
        ActivenessParams(empty_period="maybe")
    with pytest.raises(ValueError):
        ActivenessParams(epsilon=2.0)


def test_period_seconds():
    assert ActivenessParams(period_days=7).period_seconds == 7 * 86_400
    assert ActivenessParams(period_days=0.5).period_seconds == 43_200


def test_safe_exp():
    assert safe_exp(0.0) == 1.0
    assert safe_exp(-math.inf) == 0.0
    assert safe_exp(10_000.0) == math.inf


# ---------------------------------------------------------------- Eq. 1-5 hand cases

def test_no_activities_is_initial_rank():
    assert type_log_rank([], [], T_C, P7) == 0.0  # rank 1.0


def test_single_recent_activity_is_active():
    # One activity in the last period: m=1, avg=D, b=1 -> Phi=1 (log 0).
    ts = T_C - L // 2
    assert type_log_rank([ts], [5.0], T_C, P7) == pytest.approx(0.0)


def test_single_old_activity_is_inactive():
    # One activity two periods back: m=1 but e = 1 - 2 + 1 = 0 -> dropped;
    # the single in-window period is empty -> rank 0 under "zero".
    ts = T_C - L - L // 2
    assert type_log_rank([ts], [5.0], T_C, P7) == -math.inf


def test_span_of_one_period_gives_m_equals_one():
    # Eq. (1): span exactly L -> m = 1; the older activity's period index
    # is e = 1 - 2 + 1 = 0, outside the window, so only the recent one
    # counts: avg = 8/1, D_1 = 6 -> b = 0.75.
    ts_old, ts_new = T_C - L - 10, T_C - 10
    got = type_log_rank([ts_old, ts_new], [2.0, 6.0], T_C, P7)
    assert got == pytest.approx(math.log(6.0 / 8.0))


def test_two_periods_hand_computed():
    # Span 2L - 20 -> m = 2 (Eq. 1).  Old activity: q = ceil((2L-10)/L) = 2
    # -> e = 1; new activity: q = 1 -> e = 2 (Eq. 4).
    # avg = (2+6)/2 = 4; b_1 = 0.5, b_2 = 1.5 (Eqs. 2-3).
    # log Phi = 1*ln(0.5) + 2*ln(1.5) (Eq. 5).
    ts_old = T_C - 2 * L + 10
    ts_new = T_C - 10
    expected = math.log(0.5) + 2 * math.log(1.5)
    got = type_log_rank([ts_old, ts_new], [2.0, 6.0], T_C, P7)
    assert got == pytest.approx(expected)


def test_rising_beats_falling():
    """More recent weight -> rising activity outranks falling activity."""
    ts_old, ts_new = T_C - 2 * L + 10, T_C - 10
    rising = type_log_rank([ts_old, ts_new], [2.0, 6.0], T_C, P7)
    falling = type_log_rank([ts_old, ts_new], [6.0, 2.0], T_C, P7)
    assert rising > falling


def test_uniform_activity_is_exactly_one():
    # Same impact in every in-window period: every b_e = 1 -> Phi = 1.
    # Span 3L - 20 -> m = 3, activities land at e = 3, 2, 1.
    ts = [T_C - 10, T_C - 10 - L, T_C - 3 * L + 10]
    got = type_log_rank(ts, [3.0] * 3, T_C, P7)
    assert got == pytest.approx(0.0)


def test_empty_period_zero_policy_collapses():
    # Activities at e=3 and e=1 of a 3-period window; e=2 empty.
    ts = [T_C - 10, T_C - 3 * L + 10]
    assert type_log_rank(ts, [1.0, 1.0], T_C, P7) == -math.inf


def test_empty_period_skip_policy():
    params = ActivenessParams(period_days=7, empty_period="skip")
    ts = [T_C - 10, T_C - 3 * L + 10]
    # m=3, avg = 2/3; b_1 = b_3 = 1.5; log = (1+3)*ln(1.5).
    assert type_log_rank(ts, [1.0, 1.0], T_C, params) == pytest.approx(
        4 * math.log(1.5))


def test_empty_period_epsilon_policy():
    eps = 1e-6
    params = ActivenessParams(period_days=7, empty_period="epsilon",
                              epsilon=eps)
    ts = [T_C - 10, T_C - 3 * L + 10]
    expected = 4 * math.log(1.5) + 2 * math.log(eps)
    assert type_log_rank(ts, [1.0, 1.0], T_C, params) == pytest.approx(expected)


def test_all_zero_impacts_rank_zero():
    ts = [T_C - 10, T_C - 20]
    assert type_log_rank(ts, [0.0, 0.0], T_C, P7) == -math.inf


def test_unsorted_input_accepted():
    ts = [T_C - 10, T_C - L - 10]
    a = type_log_rank(ts, [6.0, 2.0], T_C, P7)
    b = type_log_rank(ts[::-1], [2.0, 6.0], T_C, P7)
    assert a == pytest.approx(b)


def test_future_activity_rejected():
    with pytest.raises(ValueError):
        type_log_rank([T_C + 1], [1.0], T_C, P7)


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        type_log_rank([1, 2], [1.0], T_C, P7)


def test_activity_at_tc_lands_in_last_period():
    # ts == t_c: ceil(0) is clamped to 1, so e = m (Fig. 3 anchoring).
    assert type_log_rank([T_C], [1.0], T_C, P7) == pytest.approx(0.0)


def test_impact_scale_invariance_of_single_period():
    # b ratios are scale-free: doubling all impacts leaves Phi unchanged.
    ts = [T_C - 10, T_C - L - 10]
    a = type_log_rank(ts, [2.0, 6.0], T_C, P7)
    b = type_log_rank(ts, [4.0, 12.0], T_C, P7)
    assert a == pytest.approx(b)


def test_activeness_boundary_is_one():
    """Phi >= 1 iff log >= 0: single-period users sit exactly on 1."""
    got = type_log_rank([T_C - 5], [123.0], T_C, P7)
    assert got >= 0.0


# ---------------------------------------------------------------- bulk vs scalar

@st.composite
def _activity_set(draw):
    n = draw(st.integers(1, 30))
    ts = draw(st.lists(st.integers(T_C - 40 * L, T_C), min_size=n, max_size=n))
    imp = draw(st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=n,
                        max_size=n))
    return ts, imp


@settings(max_examples=80, deadline=None)
@given(_activity_set(),
       st.sampled_from(["zero", "skip", "epsilon"]))
def test_bulk_matches_scalar_single_user(acts, policy):
    ts, imp = acts
    params = ActivenessParams(period_days=7, empty_period=policy)
    expected = type_log_rank(ts, imp, T_C, params)
    uids, got = evaluate_type_bulk(np.zeros(len(ts), dtype=np.int64),
                                   np.asarray(ts), np.asarray(imp),
                                   T_C, params)
    assert uids.tolist() == [0]
    if math.isinf(expected):
        assert math.isinf(got[0]) and got[0] < 0
    else:
        assert got[0] == pytest.approx(expected, rel=1e-9, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5),
                          st.integers(T_C - 30 * L, T_C),
                          st.floats(0.01, 1e4)),
                min_size=1, max_size=60))
def test_bulk_matches_scalar_multi_user(rows):
    params = ActivenessParams(period_days=7, empty_period="zero")
    uids = np.asarray([r[0] for r in rows], dtype=np.int64)
    ts = np.asarray([r[1] for r in rows], dtype=np.int64)
    imp = np.asarray([r[2] for r in rows], dtype=np.float64)
    got_uids, got = evaluate_type_bulk(uids, ts, imp, T_C, params)
    for uid, log_rank in zip(got_uids.tolist(), got.tolist()):
        mask = uids == uid
        expected = type_log_rank(ts[mask].tolist(), imp[mask].tolist(),
                                 T_C, params)
        if math.isinf(expected):
            assert math.isinf(log_rank) and log_rank < 0
        else:
            assert log_rank == pytest.approx(expected, rel=1e-9, abs=1e-9)


def test_bulk_empty_input():
    uids, ranks = evaluate_type_bulk(np.empty(0, dtype=np.int64),
                                     np.empty(0, dtype=np.int64),
                                     np.empty(0), T_C, P7)
    assert uids.size == 0 and ranks.size == 0


def test_bulk_rejects_future():
    with pytest.raises(ValueError):
        evaluate_type_bulk(np.asarray([1]), np.asarray([T_C + 5]),
                           np.asarray([1.0]), T_C, P7)


def test_bulk_rejects_shape_mismatch():
    with pytest.raises(ValueError):
        evaluate_type_bulk(np.asarray([1, 2]), np.asarray([T_C]),
                           np.asarray([1.0]), T_C, P7)


# ---------------------------------------------------------------- evaluator / Eq. 6

def _ledger(entries):
    ledger = ActivityLedger()
    for atype, uid, ts, impact in entries:
        ledger.add(atype, Activity(uid, ts, impact))
    return ledger


def test_evaluator_combines_categories():
    ledger = _ledger([
        (JOB_SUBMISSION, 1, T_C - 5, 10.0),
        (PUBLICATION, 1, T_C - 5, 3.0),
    ])
    result = ActivenessEvaluator(P7).evaluate(ledger, T_C)
    ua = result[1]
    assert ua.has_op and ua.has_oc
    assert ua.op_active and ua.oc_active
    assert ua.op_rank == pytest.approx(1.0)


def test_evaluator_multiple_types_multiply():
    # Two operation types, each log 0 -> combined log 0 (Eq. 6 product).
    ledger = _ledger([
        (JOB_SUBMISSION, 1, T_C - 5, 10.0),
        (SHELL_LOGIN, 1, T_C - 7, 1.0),
    ])
    ua = ActivenessEvaluator(P7).evaluate(ledger, T_C)[1]
    assert ua.log_op == pytest.approx(0.0)
    assert not ua.has_oc


def test_evaluator_known_uids_get_initial_rank():
    result = ActivenessEvaluator(P7).evaluate(ActivityLedger(), T_C,
                                              known_uids=[7, 8])
    assert set(result) == {7, 8}
    ua = result[7]
    assert not ua.has_op and not ua.has_oc
    assert not ua.op_active and not ua.oc_active
    assert ua.op_rank == 0.0  # no history -> classified-inactive rank
    assert ua.log_lifetime_multiplier() == 0.0  # but initial lifetime


def test_evaluator_tracks_recency_and_impact():
    ledger = _ledger([
        (JOB_SUBMISSION, 1, T_C - 5 * L, 10.0),
        (JOB_SUBMISSION, 1, T_C - 10, 30.0),
        (PUBLICATION, 1, T_C - 3 * L, 2.0),
    ])
    ua = ActivenessEvaluator(P7).evaluate(ledger, T_C)[1]
    assert ua.last_ts == T_C - 10
    assert ua.total_impact == pytest.approx(42.0)


# ---------------------------------------------------------------- lifetime multiplier

def test_lifetime_multiplier_missing_category_is_initial():
    ua = UserActiveness(1, log_op=math.log(4.0), has_op=True)
    assert ua.log_lifetime_multiplier() == pytest.approx(math.log(4.0))


def test_lifetime_multiplier_zero_rank_falls_back():
    ua = UserActiveness(1, log_op=-math.inf, has_op=True,
                        log_oc=math.log(2.0), has_oc=True)
    assert ua.log_lifetime_multiplier() == pytest.approx(math.log(2.0))
    assert ua.log_lifetime_multiplier(zero_rank_as_initial=False) == -math.inf


def test_lifetime_multiplier_products():
    ua = UserActiveness(1, log_op=math.log(3.0), has_op=True,
                        log_oc=math.log(0.5), has_oc=True)
    assert safe_exp(ua.log_lifetime_multiplier()) == pytest.approx(1.5)


# ---------------------------------------------------------------- window cap

def test_max_periods_validation():
    with pytest.raises(ValueError):
        ActivenessParams(max_periods=0)


def test_max_periods_drops_old_history():
    """A long stale history plus recent activity: uncapped, the span makes
    nearly every period empty (rank 0); capped at the recent window, the
    user is active again."""
    ts = [T_C - 100 * L, T_C - 5]
    imp = [1.0, 1.0]
    uncapped = type_log_rank(ts, imp, T_C, P7)
    assert uncapped == -math.inf
    capped = type_log_rank(ts, imp, T_C,
                           ActivenessParams(period_days=7, max_periods=1))
    assert capped == pytest.approx(0.0)  # only the recent activity remains


def test_max_periods_all_old_is_stale_not_new():
    params = ActivenessParams(period_days=7, max_periods=2)
    assert type_log_rank([T_C - 10 * L], [5.0], T_C, params) == -math.inf


def test_max_periods_noop_when_window_covers_span():
    params = ActivenessParams(period_days=7, max_periods=50)
    ts = [T_C - 10, T_C - 2 * L + 10]
    assert type_log_rank(ts, [2.0, 6.0], T_C, params) == pytest.approx(
        type_log_rank(ts, [2.0, 6.0], T_C, P7))


@settings(max_examples=60, deadline=None)
@given(_activity_set(), st.integers(1, 12))
def test_bulk_matches_scalar_with_window_cap(acts, cap):
    ts, imp = acts
    params = ActivenessParams(period_days=7, empty_period="zero",
                              max_periods=cap)
    expected = type_log_rank(ts, imp, T_C, params)
    uids, got = evaluate_type_bulk(np.zeros(len(ts), dtype=np.int64),
                                   np.asarray(ts), np.asarray(imp),
                                   T_C, params)
    assert uids.tolist() == [0]
    if math.isinf(expected):
        assert math.isinf(got[0]) and got[0] < 0
    else:
        assert got[0] == pytest.approx(expected, rel=1e-9, abs=1e-9)


def test_bulk_window_cap_keeps_stale_users_in_output():
    params = ActivenessParams(period_days=7, max_periods=1)
    uids = np.asarray([1, 1, 2], dtype=np.int64)
    ts = np.asarray([T_C - 5, T_C - 10, T_C - 50 * L], dtype=np.int64)
    imp = np.asarray([1.0, 1.0, 9.0])
    got_uids, got = evaluate_type_bulk(uids, ts, imp, T_C, params)
    assert got_uids.tolist() == [1, 2]
    assert got[0] == pytest.approx(0.0)   # user 1 active in the window
    assert got[1] == -math.inf            # user 2 entirely stale
