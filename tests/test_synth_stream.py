"""Chunked streaming generation must reproduce the in-memory workspace."""

from __future__ import annotations

import gzip
import json
import os

import pytest

from repro.cli.workspace import load_workspace, save_workspace
from repro.synth import (TitanConfig, generate_dataset, generate_users,
                         generate_workspace_streamed, iter_profile_chunks)


def _gunzip(path: str) -> bytes:
    with gzip.open(path, "rb") as f:
        return f.read()


def test_profile_chunks_concatenate_to_whole_population():
    whole = generate_users(130, 5, created_ts=0, replay_start=1_000_000,
                           replay_end=33_000_000)
    chunked = [p for chunk in iter_profile_chunks(
        130, 5, created_ts=0, replay_start=1_000_000,
        replay_end=33_000_000, chunk_users=37) for p in chunk]
    assert len(chunked) == len(whole)
    for a, b in zip(whole, chunked):
        assert a.record == b.record
        assert a.archetype.name == b.archetype.name
        assert a.intensity == b.intensity
        assert a.hiatus_window == b.hiatus_window
        assert a.onset_ts == b.onset_ts


def test_streamed_workspace_is_byte_identical(tmp_path):
    cfg = TitanConfig(n_users=120, seed=9)
    mem_dir = str(tmp_path / "mem")
    stream_dir = str(tmp_path / "stream")

    dataset = generate_dataset(cfg)
    save_workspace(dataset, mem_dir, n_shards=3)
    summary = generate_workspace_streamed(cfg, stream_dir, chunk_users=31,
                                          n_shards=3)
    assert summary == dataset.summary()

    for name in ("users.txt.gz", "jobs.txt.gz", "publications.txt.gz",
                 "app_log.txt.gz"):
        assert _gunzip(os.path.join(mem_dir, name)) == \
            _gunzip(os.path.join(stream_dir, name)), name
    mem_shards = sorted(os.listdir(os.path.join(mem_dir, "snapshot")))
    stream_shards = sorted(os.listdir(os.path.join(stream_dir, "snapshot")))
    assert mem_shards == stream_shards
    for shard in mem_shards:
        assert _gunzip(os.path.join(mem_dir, "snapshot", shard)) == \
            _gunzip(os.path.join(stream_dir, "snapshot", shard)), shard
    with open(os.path.join(mem_dir, "meta.json")) as f:
        mem_meta = json.load(f)
    with open(os.path.join(stream_dir, "meta.json")) as f:
        stream_meta = json.load(f)
    assert mem_meta == stream_meta


def test_streamed_workspace_loads_and_validates(tmp_path):
    out = str(tmp_path / "ws")
    generate_workspace_streamed(TitanConfig(n_users=60, seed=3), out,
                                chunk_users=25)
    ws = load_workspace(out)
    assert len(ws.users) == 60
    assert ws.filesystem.file_count > 0
    assert ws.replay_end > ws.replay_start
    # Traces must be time-sorted after the spill merge.
    job_ts = [j.submit_ts for j in ws.jobs]
    assert job_ts == sorted(job_ts)
    acc_ts = [a.ts for a in ws.accesses]
    assert acc_ts == sorted(acc_ts)


def test_chunk_users_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        generate_workspace_streamed(TitanConfig(n_users=10, seed=1),
                                    str(tmp_path / "x"), chunk_users=0)
