"""Run the doctests embedded in module/class docstrings."""

import doctest

import pytest

import repro.analysis.tables
import repro.parallel.probes
import repro.vfs.path_trie

DOC_MODULES = [
    repro.vfs.path_trie,
    repro.analysis.tables,
    repro.parallel.probes,
]


@pytest.mark.parametrize("module", DOC_MODULES,
                         ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, tests = doctest.testmod(module, verbose=False).failed, \
        doctest.testmod(module, verbose=False).attempted
    assert tests > 0, f"{module.__name__} should carry doctests"
    assert failures == 0
