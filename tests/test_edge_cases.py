"""Edge-case hardening across modules: boundary conditions the main test
files do not reach."""

import math

import pytest

from repro.analysis import render_emulation_summary
from repro.core import (
    ActiveDRPolicy,
    ActivenessEvaluator,
    ActivenessParams,
    Activity,
    ActivityLedger,
    ExemptionList,
    FixedLifetimePolicy,
    JOB_SUBMISSION,
    RetentionConfig,
    UserActiveness,
    UserClass,
)
from repro.emulation import DailyMetrics, EmulationResult
from repro.vfs import DAY_SECONDS, FileMeta, PathTrie, VirtualFileSystem

from conftest import NOW, make_fs


# ---------------------------------------------------------------- vfs

def test_trie_single_component_paths():
    t = PathTrie()
    t.insert("/a", 1)
    t.insert("/b", 2)
    assert t.lookup("/a") == 1 and t.lookup("/b") == 2
    assert t.count_prefix("/") == 2


def test_trie_deep_path():
    t = PathTrie()
    deep = "/" + "/".join(f"d{i}" for i in range(60))
    t.insert(deep, "x")
    assert t.lookup(deep) == "x"
    assert t.count_prefix("/d0") == 1


def test_trie_reinsert_after_delete():
    t = PathTrie()
    t.insert("/a/b/c", 1)
    t.delete("/a/b/c")
    t.insert("/a/b/c", 2)
    assert t.lookup("/a/b/c") == 2
    assert len(t) == 1


def test_fs_same_path_different_owner_replacement():
    fs = VirtualFileSystem()
    fs.add_file("/f", FileMeta(10, NOW, NOW, NOW, 1))
    fs.add_file("/f", FileMeta(20, NOW, NOW, NOW, 2))
    assert fs.user_file_count(1) == 0
    assert fs.user_file_count(2) == 1
    assert [p for p, _ in fs.iter_user_files(2)] == ["/f"]


# ---------------------------------------------------------------- activeness

def test_evaluation_at_activity_instant():
    # t_c exactly equal to the only activity's timestamp.
    ledger = ActivityLedger()
    ledger.add(JOB_SUBMISSION, Activity(1, NOW, 5.0))
    result = ActivenessEvaluator(ActivenessParams()).evaluate(ledger, NOW)
    assert result[1].op_active


def test_huge_impacts_do_not_overflow():
    ledger = ActivityLedger()
    for k in range(10):
        ledger.add(JOB_SUBMISSION, Activity(1, NOW - k * 86_400, 1e300))
    result = ActivenessEvaluator(ActivenessParams(period_days=1)).evaluate(
        ledger, NOW)
    assert math.isfinite(result[1].log_op)


def test_many_periods_log_rank_stays_finite_when_dense():
    # Daily activity for 3 years at 1-day periods: m ~ 1095, all filled.
    ledger = ActivityLedger()
    for k in range(1095):
        ledger.add(JOB_SUBMISSION, Activity(1, NOW - k * 86_400, 2.0))
    params = ActivenessParams(period_days=1)
    result = ActivenessEvaluator(params).evaluate(ledger, NOW)
    assert math.isfinite(result[1].log_op)
    assert result[1].op_active  # uniform activity: every b == 1


# ---------------------------------------------------------------- policies

def test_flt_on_empty_filesystem():
    fs = make_fs([])
    report = FixedLifetimePolicy(RetentionConfig()).run(fs, NOW)
    assert report.purged_files_total == 0
    assert report.retained_files_total == 0


def test_activedr_on_empty_filesystem():
    fs = make_fs([])
    report = ActiveDRPolicy(RetentionConfig()).run(fs, NOW, activeness={})
    assert report.purged_files_total == 0
    assert report.target_met


def test_activedr_all_files_exempt_reports_unmet():
    entries = [(f"/s/u/f{i}", 1, 100, 365) for i in range(4)]
    fs = make_fs(entries)
    ex = ExemptionList(directories=["/s/u"])
    report = ActiveDRPolicy(RetentionConfig()).run(
        fs, NOW, activeness={1: UserActiveness(1)}, exemptions=ex)
    assert report.purged_files_total == 0
    assert report.target_met is False
    assert fs.file_count == 4


def test_activedr_target_exactly_at_usage():
    # Utilization exactly at the target: nothing to purge.
    fs = make_fs([("/s/a", 1, 500, 365)], capacity=1000)
    report = ActiveDRPolicy(RetentionConfig()).run(
        fs, NOW, activeness={1: UserActiveness(1)})
    assert report.purged_files_total == 0
    assert report.target_met


def test_activedr_zero_target_utilization_purges_all_purgeable():
    entries = [(f"/s/u/f{i}", 1, 100, 365) for i in range(4)]
    fs = make_fs(entries)
    cfg = RetentionConfig(purge_target_utilization=0.0)
    report = ActiveDRPolicy(cfg).run(fs, NOW,
                                     activeness={1: UserActiveness(1)})
    assert fs.file_count == 0
    assert report.target_met


def test_flt_trigger_boundary_file_saved_by_midnight_access():
    """A file exactly at the lifetime boundary is kept (strict >)."""
    lifetime = RetentionConfig().lifetime_days
    fs = make_fs([("/s/a", 1, 10, lifetime)])
    FixedLifetimePolicy(RetentionConfig()).run(fs, NOW)
    assert "/s/a" in fs


def test_activedr_respects_custom_decay():
    # decay 0 => retrospective passes change nothing.
    entries = [(f"/s/u/f{i}", 1, 100, 80) for i in range(10)]
    fs = make_fs(entries)
    cfg = RetentionConfig(rank_decay=0.0)
    report = ActiveDRPolicy(cfg).run(fs, NOW,
                                     activeness={1: UserActiveness(1)})
    assert report.purged_files_total == 0
    assert report.target_met is False


# ---------------------------------------------------------------- reportgen

def test_render_summary_handles_zero_accesses():
    result = EmulationResult(policy="FLT", lifetime_days=90,
                             metrics=DailyMetrics(3))
    text = render_emulation_summary(result)
    assert "file misses: 0" in text
