"""Property-based invariants of the synthetic generators and the trie's
radix compression."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth import (
    AccessTraceConfig,
    FileTreeConfig,
    JobTraceConfig,
    generate_accesses,
    generate_file_trees,
    generate_jobs,
    generate_users,
    ts_utc,
)
from repro.vfs import PathTrie


# ---------------------------------------------------------------- trie shape

@settings(max_examples=40, deadline=None)
@given(st.sets(st.lists(st.sampled_from("abcd"), min_size=1, max_size=5)
               .map(lambda parts: "/" + "/".join(parts)),
               min_size=1, max_size=40))
def test_radix_compression_bound(paths):
    """A compressed radix tree has at most 2n-1 non-root nodes for n keys
    (every interior node has >= 2 children or carries a payload)."""
    t = PathTrie()
    for p in paths:
        t.insert(p, True)
    n = len(t)
    assert t.node_count() - 1 <= 2 * n - 1


@settings(max_examples=30, deadline=None)
@given(st.sets(st.lists(st.sampled_from("abc"), min_size=1, max_size=4)
               .map(lambda parts: "/" + "/".join(parts)),
               min_size=2, max_size=20),
       st.data())
def test_radix_compression_survives_deletion(paths, data):
    t = PathTrie()
    paths = sorted(paths)
    for p in paths:
        t.insert(p, True)
    to_delete = data.draw(st.lists(st.sampled_from(paths), max_size=10,
                                   unique=True))
    for p in to_delete:
        t.delete(p)
    n = len(t)
    if n:
        assert t.node_count() - 1 <= 2 * n - 1
    else:
        assert t.node_count() == 1  # just the root


# ---------------------------------------------------------------- generators

@settings(max_examples=10, deadline=None)
@given(st.integers(5, 60), st.integers(0, 10_000))
def test_generators_deterministic_and_bounded(n_users, seed):
    start, snap, r0, r1 = (ts_utc(2014), ts_utc(2015, 12, 28),
                           ts_utc(2016), ts_utc(2017))
    users_a = generate_users(n_users, seed, start, r0, r1)
    users_b = generate_users(n_users, seed, start, r0, r1)
    assert [u.archetype.name for u in users_a] == \
           [u.archetype.name for u in users_b]

    cfg = FileTreeConfig(snapshot_ts=snap)
    trees = generate_file_trees(users_a, cfg, seed)
    for tree in trees:
        assert 1 <= len(tree.paths) <= cfg.max_files_per_user
        for meta in tree.metas:
            assert cfg.min_size_bytes // 2 <= meta.size <= cfg.max_size_bytes
            assert meta.atime <= snap

    jobs = generate_jobs(users_a, JobTraceConfig(trace_start=start,
                                                 trace_end=r1), seed)
    for job in jobs[:50]:
        assert start <= job.submit_ts < r1
        assert job.end_ts > job.start_ts >= job.submit_ts

    accesses = generate_accesses(
        users_a, trees, AccessTraceConfig(replay_start=r0, replay_end=r1),
        seed)
    for rec in accesses[:50]:
        assert r0 <= rec.ts < r1
