"""Networked multi-tenant server suite.

The acceptance bar, pinned here end to end:

1. every tenant of a fleet -- sharing ONE event feed and ONE incremental
   activeness state -- finalizes **bit-identical** to an independent
   batch ``FastEmulator`` run of its policy, for all four paper policies;
2. the sharing is real: N same-params tenants refold activeness once per
   trigger boundary, not N times;
3. the same bit-identity holds when the events arrive over sockets from
   concurrent producers, when a producer misbehaves (out-of-order events
   hit the quarantine, never the engine), across a checkpoint / kill /
   resume cycle, and through the real CLI under a supervised ``kill -9``;
4. the admin plane answers during active ingestion without stalling the
   event loop.
"""

from __future__ import annotations

import glob
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import replace

import pytest

from repro.analysis import render_emulation_summary
from repro.core.cache_policy import JobResidencyIndex
from repro.emulation import (EmulatorConfig, FastEmulator, compile_dataset,
                             replay_bounds)
from repro.server import (AdminServer, MultiTenantService,
                          NetworkEventStream, SocketListener, TenantSpec,
                          admin_request, publish_events)
from repro.server.ingest import PublishRefused
from repro.server.protocol import (MAX_FRAME_BYTES, PROTOCOL_VERSION,
                                   FrameError, FrameReader, connect_socket,
                                   decode_event, encode_event, encode_frame,
                                   format_address, parse_address,
                                   write_frame)
from repro.stream import CheckpointManager, dataset_event_stream, skip_events
from repro.stream.events import (EVENT_JOB, StreamEvent, access_events,
                                 job_events, publication_events)
from repro.stream.reliability.quarantine import REASON_REGRESSION
from repro.cli.workspace import save_workspace
from repro.synth import TitanConfig, generate_dataset

from test_compiled_replay import assert_results_equal

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ---------------------------------------------------------------------------
# helpers


def build_policy(spec, dataset):
    residency = (JobResidencyIndex(dataset.jobs)
                 if spec.policy == "cache" else None)
    return spec.build_policy(residency=residency)


def make_fleet(dataset, specs, **kwargs):
    start, end = replay_bounds(dataset)
    pairs = [(spec, build_policy(spec, dataset)) for spec in specs]
    return MultiTenantService(
        pairs, snapshot_fs=dataset.filesystem,
        replay_start=start, replay_end=end,
        known_uids=[u.uid for u in dataset.users],
        policy_factory=lambda spec: build_policy(spec, dataset),
        **kwargs)


def batch_result(dataset, compiled, spec):
    """Independent single-policy FastEmulator run of one tenant's spec."""
    policy = build_policy(spec, dataset)
    known = [u.uid for u in dataset.users]
    return FastEmulator(policy, spec.retention_config().activeness,
                        EmulatorConfig()).run(compiled, known_uids=known)


@pytest.fixture(scope="module")
def dataset(tiny_dataset):
    return tiny_dataset


@pytest.fixture(scope="module")
def compiled(dataset):
    return compile_dataset(dataset)


@pytest.fixture(scope="module")
def events(dataset):
    return list(dataset_event_stream(dataset))


ALL_KINDS = [
    TenantSpec(name="flt", policy="flt"),
    TenantSpec(name="flt-target", policy="flt-target"),
    TenantSpec(name="activedr", policy="activedr"),
    TenantSpec(name="value", policy="value"),
    TenantSpec(name="cache", policy="cache"),
]

HETERO = [
    TenantSpec(name="a", policy="activedr"),
    TenantSpec(name="b", policy="activedr", purge_trigger_days=14,
               period_days=14.0),
    TenantSpec(name="c", policy="value", lifetime_days=30.0),
    TenantSpec(name="d", policy="cache", target=0.6),
]


def _sock(tmp_path, name):
    return f"unix:{tmp_path / name}"


# ---------------------------------------------------------------------------
# tenant specs


def test_tenant_spec_parse_roundtrip():
    spec = TenantSpec.parse("name=t1,policy=value,lifetime=30,target=0.6,"
                            "trigger=14,period=14")
    assert spec == TenantSpec(name="t1", policy="value", lifetime_days=30.0,
                              target=0.6, purge_trigger_days=14,
                              period_days=14.0)
    assert TenantSpec.from_jsonable(spec.to_jsonable()) == spec
    # Defaults apply for unspecified knobs.
    assert TenantSpec.parse("name=x").policy == "activedr"


@pytest.mark.parametrize("text", [
    "policy=flt",                    # no name
    "name=t1,flavor=spicy",          # unknown key
    "name=t1,policy",                # not key=value
    "name=t1,policy=lru",            # unknown policy kind
    "name=a,b,policy=flt",           # comma inside a name
])
def test_tenant_spec_parse_rejects(text):
    with pytest.raises(ValueError):
        TenantSpec.parse(text)


def test_tenant_spec_config_matches_knobs():
    spec = TenantSpec(name="t", policy="flt", lifetime_days=30.0,
                      target=0.7, purge_trigger_days=14, period_days=3.5)
    cfg = spec.retention_config()
    assert cfg.lifetime_days == 30.0
    assert cfg.purge_target_utilization == 0.7
    assert cfg.purge_trigger_days == 14
    assert cfg.activeness.period_days == 3.5


# ---------------------------------------------------------------------------
# wire protocol


def test_frame_roundtrip_over_socketpair():
    a, b = socket.socketpair()
    try:
        messages = [{"type": "hello", "protocol": PROTOCOL_VERSION},
                    {"type": "event", "x": [1, 2, 3]},
                    {"type": "end"}]
        for msg in messages:
            write_frame(a, msg)
        a.close()
        reader = FrameReader(b)
        assert [reader.read() for _ in range(3)] == messages
        assert reader.read() is None  # clean EOF
    finally:
        b.close()


@pytest.mark.parametrize("payload", [
    b"xyz\n{}\n",                    # non-numeric length prefix
    b"5\n{}\n",                      # length longer than the body
    b"2\n{}",                        # missing trailing newline
    b"7\nnotjson\n",                 # body is not JSON
    b"3\n[1]\n",                     # body is not an object
    str(MAX_FRAME_BYTES + 1).encode() + b"\n",  # hostile length
])
def test_frame_reader_rejects_garbage(payload):
    a, b = socket.socketpair()
    try:
        a.sendall(payload)
        a.close()
        with pytest.raises(FrameError):
            FrameReader(b).read()
    finally:
        b.close()


def test_frame_encode_escapes_newlines_and_rejects_oversize():
    # JSON string escaping keeps the one-line-body invariant: embedded
    # newlines ride as \n escapes, never as raw frame-breaking bytes.
    frame = encode_frame({"k": "a\nb"})
    assert frame.count(b"\n") == 2  # length prefix + trailing terminator
    with pytest.raises(FrameError):
        encode_frame({"k": "x" * (MAX_FRAME_BYTES + 1)})


def test_event_codec_roundtrip(events):
    by_kind = {}
    for ev in events:
        by_kind.setdefault(ev.kind, ev)
    assert len(by_kind) == 3
    for ev in by_kind.values():
        frame = json.loads(json.dumps(encode_event(ev)))
        got = decode_event(frame)
        assert got == ev
    with pytest.raises(ValueError):
        decode_event({"kind": "meteor"})


def test_parse_address_spellings():
    assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
    assert parse_address("tcp:localhost:9000") == ("tcp", ("localhost", 9000))
    assert parse_address("localhost:9000") == ("tcp", ("localhost", 9000))
    assert format_address(parse_address("unix:/tmp/x.sock")) == \
        "unix:/tmp/x.sock"
    assert format_address(parse_address("localhost:9000")) == \
        "tcp:localhost:9000"
    for bad in ("unix:", "localhost", ":9000", "tcp:host:notaport"):
        with pytest.raises(ValueError):
            parse_address(bad)


# ---------------------------------------------------------------------------
# in-process fleet: bit-identity + shared evaluation


def test_fleet_matches_batch_per_policy(dataset, compiled, events):
    service = make_fleet(dataset, ALL_KINDS)
    results = service.run(iter(events))
    for spec in ALL_KINDS:
        assert_results_equal(results[spec.name],
                             batch_result(dataset, compiled, spec))
    # All five tenants share one params set: activeness is folded once
    # per trigger boundary (+1 for the initial classification), not 5x.
    triggers = max(t.stats["triggers"] for t in service.tenants)
    assert triggers > 10
    assert service.stats["activeness_evals"] == triggers + 1


def test_heterogeneous_fleet_matches_batch(dataset, compiled, events):
    service = make_fleet(dataset, HETERO)
    results = service.run(iter(events))
    for spec in HETERO:
        assert_results_equal(results[spec.name],
                             batch_result(dataset, compiled, spec))
    # Two distinct params sets among four tenants: strictly fewer folds
    # than the naive one-per-tenant-per-trigger accounting.
    naive = sum(t.stats["triggers"] + 1 for t in service.tenants)
    assert service.stats["activeness_evals"] < naive
    by_cadence = {t.name: t.stats["triggers"] for t in service.tenants}
    assert by_cadence["b"] * 2 == by_cadence["a"]  # 14-day vs 7-day cadence


# ---------------------------------------------------------------------------
# socket ingestion


def _publish_dataset(address, dataset, *, jobs=None):
    """Publish the dataset's three trace families over three connections."""
    feeds = {
        "jobs": jobs if jobs is not None else list(job_events(dataset.jobs)),
        "publications": list(publication_events(dataset.publications)),
        "accesses": list(access_events(dataset.accesses)),
    }
    errors = []

    def worker(name):
        try:
            publish_events(address, name, feeds[name], retry_for=30.0)
        except BaseException as exc:  # noqa: BLE001 -- reported below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(name,), daemon=True)
               for name in feeds]
    for t in threads:
        t.start()
    return threads, errors


def test_socket_ingest_matches_batch(dataset, compiled, tmp_path):
    address = _sock(tmp_path, "ingest.sock")
    specs = HETERO[:2]
    with SocketListener(address) as listener:
        stream = NetworkEventStream(
            listener, known_uids=[u.uid for u in dataset.users])
        threads, errors = _publish_dataset(address, dataset)
        service = make_fleet(dataset, specs)
        results = service.run(iter(stream))
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors
        for spec in specs:
            assert_results_equal(results[spec.name],
                                 batch_result(dataset, compiled, spec))
        report = stream.report()
        assert report["quarantine"]["quarantined"] == 0
        listing = listener.describe()
        for info in listing["sources"].values():
            assert info["finished"] and info["health"] == "ok"
        assert listing["connections_accepted"] == 3


def test_socket_out_of_order_event_is_quarantined(dataset, compiled,
                                                  tmp_path):
    # A producer that regresses in time: its offending event is diverted
    # to the quarantine, never reaches the engine, and the run stays
    # bit-identical to batch.
    address = _sock(tmp_path, "ooo.sock")
    jobs = list(job_events(dataset.jobs))
    early = jobs[5].payload
    bad_rec = replace(jobs[40].payload, job_id=999_999_999,
                      submit_ts=early.submit_ts, start_ts=early.start_ts,
                      end_ts=early.end_ts)
    tainted = jobs[:41] + [StreamEvent(bad_rec.submit_ts, EVENT_JOB,
                                       bad_rec)] + jobs[41:]
    spec = TenantSpec(name="solo", policy="activedr")
    with SocketListener(address) as listener:
        stream = NetworkEventStream(
            listener, known_uids=[u.uid for u in dataset.users])
        threads, errors = _publish_dataset(address, dataset, jobs=tainted)
        service = make_fleet(dataset, [spec])
        results = service.run(iter(stream))
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors
    assert stream.quarantine.total == 1
    assert stream.quarantine.by_reason == {REASON_REGRESSION: 1}
    assert_results_equal(results[spec.name],
                         batch_result(dataset, compiled, spec))


def test_listener_refuses_bad_handshakes(tmp_path):
    address = _sock(tmp_path, "refuse.sock")
    with SocketListener(address, expected={"jobs": 1}) as listener:
        # Unknown source.
        with pytest.raises(PublishRefused, match="unexpected source"):
            publish_events(address, "meteors", [])
        # Wrong protocol version.
        sock = connect_socket(address, timeout=10)
        try:
            write_frame(sock, {"type": "hello", "protocol": 999,
                               "source": "jobs"})
            answer = FrameReader(sock).read()
            assert answer["type"] == "error"
            assert "protocol" in answer["reason"]
        finally:
            sock.close()
        # A producer reconnecting to a finished source is refused:
        # late re-publishes belong to a restarted server.
        assert publish_events(address, "jobs", []) == 0
        _wait_for(lambda: listener.sources()[0].finished, 10,
                  "the jobs source to finish")
        with pytest.raises(PublishRefused, match="already finished"):
            publish_events(address, "jobs", [])
        assert listener.connections_refused == 2


# ---------------------------------------------------------------------------
# runtime tenant add / remove


def test_runtime_add_and_remove_tenant(dataset, events):
    service = make_fleet(dataset, HETERO[:2])
    half = len(events) // 2
    for ev in events[:half]:
        service.ingest(ev)
    boundary_at_add = service._next_boundary
    service.request_add_tenant(TenantSpec(name="late", policy="value"),
                               clone_from="a")
    service.request_remove_tenant("b")
    results = service.run(iter(events[half:]))
    assert set(results) == {"a", "late"}
    ok_ops = [e for e in service.op_log if e["ok"]]
    assert [e["op"] for e in ok_ops] == ["add", "remove"]
    late = service.tenant("late")
    assert late.admitted_boundary >= boundary_at_add
    # The latecomer only triggered from its admission on.
    assert 0 < late.stats["triggers"] < service.tenant("a").stats["triggers"]
    # Its state genuinely diverged from the donor after admission.
    assert len(late.reports) == late.stats["triggers"]


def test_runtime_ops_refused_cases(dataset, events):
    service = make_fleet(dataset, [TenantSpec(name="only", policy="flt")])
    service.request_remove_tenant("only")       # last tenant
    service.request_remove_tenant("ghost")      # no such tenant
    service.request_add_tenant(TenantSpec(name="only", policy="value"))
    for ev in events:                           # ops drain at a boundary
        service.ingest(ev)
        if len(service.op_log) >= 3:
            break
    errors = [e for e in service.op_log if not e["ok"]]
    assert len(errors) == 3
    assert "last" in errors[0]["error"]
    assert "no tenant" in errors[1]["error"]
    assert "already exists" in errors[2]["error"]
    assert [t.name for t in service.tenants] == ["only"]


def test_runtime_add_without_factory_is_refused(dataset, events):
    start, end = replay_bounds(dataset)
    spec = TenantSpec(name="t", policy="activedr")
    service = MultiTenantService(
        [(spec, build_policy(spec, dataset))],
        snapshot_fs=dataset.filesystem, replay_start=start, replay_end=end,
        known_uids=[u.uid for u in dataset.users])
    service.request_add_tenant(TenantSpec(name="more", policy="flt"))
    for ev in events:
        service.ingest(ev)
        if service.op_log:
            break
    errors = [e for e in service.op_log if not e["ok"]]
    assert len(errors) == 1 and "policy factory" in errors[0]["error"]


# ---------------------------------------------------------------------------
# checkpoint / resume


def test_checkpoint_resume_is_bit_identical(dataset, compiled, events,
                                            tmp_path):
    ckdir = str(tmp_path / "ck")
    service = make_fleet(dataset, HETERO, checkpoint_dir=ckdir)
    assert service.run(iter(events), stop_after_events=len(events) // 2) \
        is None
    assert service.stats["checkpoints_written"] >= 1
    newest, failures = CheckpointManager(ckdir).latest_verified()
    assert newest is not None and not failures

    resumed = MultiTenantService.resume(
        newest, policy_factory=lambda spec: build_policy(spec, dataset),
        checkpoint_dir=str(tmp_path / "ck2"))
    assert resumed.cursor <= len(events) // 2
    results = resumed.run(skip_events(iter(events), resumed.cursor))
    for spec in HETERO:
        assert_results_equal(results[spec.name],
                             batch_result(dataset, compiled, spec))


def test_seed_pending_resume_leaves_durable_ingest_unset(dataset, tmp_path):
    """A rebalance clone must not advertise the donor's ingest cursors.

    The clone's ``ingest`` section belongs to the DONOR's lane sequence
    domain; if the seeded worker reported it as its own durable cursors
    (admin health), the fleet would trim the worker's fresh resend
    lanes -- whose seqs start at 1 -- against the donor's much larger
    cursors and a kill -9 in that window would lose rows for good.
    """
    service = make_fleet(dataset, HETERO[:2])
    service.ingest_snapshot = lambda consumed: {
        "consumed": consumed,
        "source_seqs": {"jobs": 5000, "access": 7000}}

    def factory(spec):
        return build_policy(spec, dataset)

    own = CheckpointManager(str(tmp_path / "own"))
    service.save_checkpoint(manager=own)
    newest, failures = own.latest_verified()
    assert newest and not failures
    resumed = MultiTenantService.resume(newest, policy_factory=factory)
    assert not resumed.resumed_seed_pending
    # An own-chain checkpoint's cursors ARE durable here.
    assert resumed.last_durable_ingest["source_seqs"]["jobs"] == 5000

    clone = CheckpointManager(str(tmp_path / "clone"))
    service.save_checkpoint(manager=clone,
                            extra={"shard_seed_pending": True})
    newest, failures = clone.latest_verified()
    assert newest and not failures
    seeded = MultiTenantService.resume(newest, policy_factory=factory)
    assert seeded.resumed_seed_pending
    assert seeded.resumed_ingest is not None   # CLI gates listener seeding
    assert seeded.last_durable_ingest is None  # donor's domain, not ours


def test_duplicate_split_request_applies_once(dataset, events, tmp_path):
    """A re-issued shard split must not re-clone the narrowed donor.

    The fleet re-sends ``shard-split`` when the donor respawns during a
    rebalance; if the re-issue races the original ack both requests are
    queued, and a second application would checkpoint the already-
    restricted donor state over the seed clone in ``dest_dir``.
    """
    service = make_fleet(dataset, HETERO[:1])
    dest = str(tmp_path / "seed")
    payload = dict(at_boundary=1, dest_dir=dest,
                   keep_mask=lambda uids: uids % 2 == 0)
    service.request_split(**payload)
    service.request_split(**payload)
    service.run(iter(events))
    splits = [e for e in service.op_log if e["op"] == "split"]
    assert len(splits) == 2 and all(e["ok"] for e in splits)
    # Exactly one clone checkpoint: the duplicate was a no-op.
    assert len(glob.glob(os.path.join(dest, "checkpoint-*.npz"))) == 1


def test_resume_refuses_fingerprint_drift(dataset, events, tmp_path):
    ckdir = str(tmp_path / "ck")
    service = make_fleet(dataset, HETERO[:2], checkpoint_dir=ckdir)
    service.run(iter(events), stop_after_events=len(events) // 2)
    newest, _failures = CheckpointManager(ckdir).latest_verified()

    def drifted_factory(spec):
        return build_policy(replace(spec, lifetime_days=5.0), dataset)

    with pytest.raises(ValueError, match="fingerprint mismatch"):
        MultiTenantService.resume(newest, policy_factory=drifted_factory)


def test_resume_refuses_partial_day_checkpoint(dataset, events, tmp_path):
    service = make_fleet(dataset, HETERO[:1],
                         checkpoint_dir=str(tmp_path / "ck"))
    for ev in events:
        service.ingest(ev)
        if service._buf_pid:
            break
    with pytest.raises(ValueError, match="partial day"):
        service.save_checkpoint()


# ---------------------------------------------------------------------------
# admin plane


def test_admin_plane_answers_during_ingestion(dataset, compiled, events,
                                              tmp_path):
    service = make_fleet(dataset, HETERO[:2],
                         checkpoint_dir=str(tmp_path / "ck"))
    hold_at = len(events) // 3
    holding = threading.Event()   # ingest thread parked at hold_at
    release = threading.Event()   # admin side done with mid-flight queries

    def gated():
        for i, ev in enumerate(events):
            if i == hold_at:
                holding.set()
                assert release.wait(60)
            yield ev

    address = _sock(tmp_path, "admin.sock")
    with AdminServer(address, service) as admin:
        thread = threading.Thread(target=service.run, args=(gated(),),
                                  daemon=True)
        thread.start()
        # Query the plane while ingestion is demonstrably mid-flight
        # (the feed is parked, not finished -- a stalled admin plane
        # would deadlock here, failing the wait below).
        assert holding.wait(60)
        status = admin_request(address, {"cmd": "status"})
        health = admin_request(address, {"cmd": "health"})
        metrics = admin_request(address, {"cmd": "metrics"})
        query = admin_request(
            address, {"cmd": "query", "uid": dataset.users[0].uid})
        for response in (status, health, metrics, query):
            assert response["ok"], response
        assert status["cursor"] == hold_at
        assert set(status["tenants"]) == {"a", "b"}
        assert health["healthy"] and health["quarantined"] == 0
        assert metrics["cursor"] == hold_at
        assert metrics["events_per_second"] >= 0.0
        assert set(query["tenants"]) == {"a", "b"}
        for info in query["tenants"].values():
            assert info["class"] is not None
            assert info["live_files"] >= 0
        # Unknown commands answer, they do not disconnect.
        bad = admin_request(address, {"cmd": "selfdestruct"})
        assert bad == {"ok": False,
                       "error": "unknown command 'selfdestruct'"}
        assert admin.requests >= 5 and admin.errors >= 1
        release.set()
        thread.join(timeout=120)
        assert not thread.is_alive()
        after = admin_request(address, {"cmd": "metrics"})
        assert after["checkpoints_written"] >= 1
        assert "checkpoint_age_seconds" in after
    # The run was not perturbed by the concurrent admin traffic.
    results = service.finalize()
    for spec in HETERO[:2]:
        assert_results_equal(results[spec.name],
                             batch_result(dataset, compiled, spec))


def test_admin_tenant_ops_are_queued(dataset, events, tmp_path):
    service = make_fleet(dataset, HETERO[:2])
    address = _sock(tmp_path, "admin-ops.sock")
    with AdminServer(address, service):
        added = admin_request(address, {
            "cmd": "tenants", "action": "add",
            "spec": TenantSpec(name="late", policy="flt").to_jsonable(),
            "clone_from": "a"})
        assert added == {"ok": True, "queued": True, "tenant": "late"}
        removed = admin_request(address, {"cmd": "tenants",
                                          "action": "remove", "name": "b"})
        assert removed["queued"]
        # Ops apply at the next boundary, not immediately.
        assert {t.name for t in service.tenants} == {"a", "b"}
        results = service.run(iter(events))
        assert set(results) == {"a", "late"}
        listing = admin_request(address, {"cmd": "tenants"})
        assert set(listing["tenants"]) == {"a", "late"}


# ---------------------------------------------------------------------------
# the full networked acceptance scenario, through the real CLI


N_USERS, SEED = 30, 7
SERVE_TENANTS = [
    TenantSpec(name="flt", policy="flt"),
    TenantSpec(name="activedr", policy="activedr"),
    TenantSpec(name="value", policy="value"),
    TenantSpec(name="cache", policy="cache"),
]


@pytest.fixture(scope="module")
def server_workspace(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("server") / "ws")
    save_workspace(generate_dataset(TitanConfig(n_users=N_USERS, seed=SEED)),
                   directory, n_shards=1)
    return directory


@pytest.fixture(scope="module")
def server_batch_summaries(server_workspace):
    from repro.cli.workspace import load_workspace

    ws = load_workspace(server_workspace)
    compiled = compile_dataset(ws)
    return {spec.name: render_emulation_summary(
        batch_result(ws, compiled, spec)) for spec in SERVE_TENANTS}


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    return env


def _tenant_args():
    out = []
    for spec in SERVE_TENANTS:
        out += ["--tenant", f"name={spec.name},policy={spec.policy}"]
    return out


def _tenant_summaries(stdout):
    """Per-tenant summary blocks from fleet-serve stdout."""
    blocks, name, lines = {}, None, []
    for line in stdout.splitlines():
        m = re.match(r"=== tenant (\S+) \[\S+\] ===", line)
        if m:
            if name is not None:
                blocks[name] = "\n".join(lines).strip()
            name, lines = m.group(1), []
        elif line.startswith("supervisor:"):
            break
        elif name is not None:
            lines.append(line)
    if name is not None:
        blocks[name] = "\n".join(lines).strip()
    return blocks


def _wait_for(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


def test_supervised_kill9_resumes_bit_identical(server_workspace,
                                                server_batch_summaries,
                                                tmp_path):
    """serve --listen under supervision: SIGKILL mid-ingest, auto-resume,
    per-tenant summaries bit-identical to batch."""
    ck = str(tmp_path / "ck")
    ingest = _sock(tmp_path, "ingest.sock")
    env = _cli_env()
    supervise = subprocess.Popen(
        [sys.executable, "-m", "repro", "supervise",
         "--checkpoint-dir", ck, "--backoff-base", "0.05",
         "--backoff-max", "0.5", "--healthy-seconds", "0",
         "--", "serve", "--workspace", server_workspace,
         "--listen", ingest, *(_tenant_args()),
         "--checkpoint-dir", ck],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    def publish():
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "publish",
             "--workspace", server_workspace, "--connect", ingest,
             "--retry-for", "120"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env)

    publisher = republisher = None
    try:
        publisher = publish()
        # Kill the serve child (not the supervisor) once it has durably
        # checkpointed part of the trace.  The producer dies with it
        # (small feeds may already have been fully acked by the dead
        # incarnation, so only a fresh whole-trace publish can feed the
        # restarted server's fresh sources) -- publisher first, so its
        # retry loop cannot race a half-publish against the resumed
        # server before the re-publish below starts.
        _wait_for(lambda: glob.glob(os.path.join(ck, "checkpoint-*.npz")),
                  120, "a first checkpoint")
        publisher.kill()
        publisher.wait(timeout=60)
        pgrep = subprocess.run(["pgrep", "-P", str(supervise.pid)],
                               capture_output=True, text=True)
        children = [int(p) for p in pgrep.stdout.split()]
        assert children, "no serve child under the supervisor"
        os.kill(children[0], signal.SIGKILL)

        # The operator's (or init system's) response to the crash: run
        # the publish again; --retry-for rides out the restart gap and
        # the resumed server's cursor skips everything already consumed.
        republisher = publish()
        out, err = supervise.communicate(timeout=240)
        pub_out, pub_err = republisher.communicate(timeout=60)
    finally:
        for proc in (publisher, republisher, supervise):
            if proc is not None and proc.poll() is None:
                proc.kill()
    assert supervise.returncode == 0, (out, err)
    assert republisher.returncode == 0, (pub_out, pub_err)
    assert "published" in pub_out
    # The second incarnation really resumed from the chain.
    assert "resumed from" in out, (out, err)
    assert "restart 1/" in err, err
    summaries = _tenant_summaries(out)
    assert set(summaries) == {spec.name for spec in SERVE_TENANTS}
    for spec in SERVE_TENANTS:
        assert summaries[spec.name] == \
            server_batch_summaries[spec.name].strip(), spec.name
