"""Tests for the activity model and trace extractors."""

import pytest

from repro.core import (
    Activity,
    ActivityCategory,
    ActivityLedger,
    ActivityType,
    JOB_SUBMISSION,
    PUBLICATION,
    SHELL_LOGIN,
    activities_from_jobs,
    activities_from_publications,
)
from repro.traces import JobRecord, PublicationRecord


def test_activity_type_validation():
    with pytest.raises(ValueError):
        ActivityType("bad", ActivityCategory.OPERATION, weight=0.0)


def test_activity_impact_validation():
    with pytest.raises(ValueError):
        Activity(1, 0, -1.0)


def test_ledger_add_and_types():
    ledger = ActivityLedger()
    ledger.add(JOB_SUBMISSION, Activity(1, 10, 1.0))
    ledger.add(PUBLICATION, Activity(1, 20, 2.0))
    assert set(ledger.types()) == {JOB_SUBMISSION, PUBLICATION}
    assert ledger.types_in(ActivityCategory.OPERATION) == [JOB_SUBMISSION]
    assert ledger.types_in(ActivityCategory.OUTCOME) == [PUBLICATION]
    assert ledger.total_activities() == 2
    assert ledger.uids() == {1}


def test_ledger_until_clips_future():
    ledger = ActivityLedger()
    ledger.extend(JOB_SUBMISSION, [Activity(1, t, 1.0) for t in (5, 10, 15)])
    clipped = ledger.until(10)
    assert [a.ts for a in clipped.activities(JOB_SUBMISSION)] == [5, 10]
    # original untouched
    assert len(ledger.activities(JOB_SUBMISSION)) == 3


def test_ledger_unknown_type_empty():
    assert ActivityLedger().activities(SHELL_LOGIN) == []


def test_activities_from_jobs_core_hours():
    job = JobRecord(1, 42, 1000, 1100, 1100 + 7200, num_nodes=2,
                    cores_per_node=16)
    (act,) = list(activities_from_jobs([job]))
    assert act.uid == 42
    assert act.ts == 1000  # submission time
    assert act.impact == pytest.approx(32 * 2.0)  # 32 cores x 2 hours


def test_activities_from_jobs_weighted():
    weighted = ActivityType("job_submission", ActivityCategory.OPERATION,
                            weight=0.5)
    job = JobRecord(1, 1, 0, 0, 3600, 1, 16)
    (act,) = list(activities_from_jobs([job], weighted))
    assert act.impact == pytest.approx(8.0)


def test_activities_from_publications_per_author():
    pub = PublicationRecord(1, 777, [10, 20], citations=3)
    acts = list(activities_from_publications([pub]))
    assert [(a.uid, a.ts) for a in acts] == [(10, 777), (20, 777)]
    # Eq. 8: (3+1)*(2-1+1)=8 for the lead, (3+1)*(2-2+1)=4 for the second.
    assert [a.impact for a in acts] == [8.0, 4.0]


def test_activities_from_empty_traces():
    assert list(activities_from_jobs([])) == []
    assert list(activities_from_publications([])) == []
