"""Tests for shard-parallel purge decisions."""

import math

import pytest

from repro.core import (
    FixedLifetimePolicy,
    RetentionConfig,
    UserActiveness,
)
from repro.parallel.retention import (
    RankDecisions,
    apply_purge_decisions,
    parallel_purge_decisions,
    user_shard_payload,
)

from conftest import NOW, make_fs


def _fs():
    return make_fs([
        ("/s/u1/a", 1, 100, 200),   # stale
        ("/s/u1/b", 1, 100, 10),    # fresh
        ("/s/u2/c", 2, 100, 200),   # stale
        ("/s/u3/d", 3, 100, 120),   # stale for inactive, not for active
    ])


def _activeness():
    return {
        1: UserActiveness(1),  # no history: initial lifetime
        2: UserActiveness(2, log_op=-math.inf, log_oc=-math.inf,
                          has_op=True, has_oc=True),
        3: UserActiveness(3, log_op=math.log(2.0), log_oc=0.0,
                          has_op=True, has_oc=True),  # lifetime 180 d
    }


def test_user_shard_payload_shape():
    payload = user_shard_payload(_fs())
    assert [uid for uid, _ in payload] == [1, 2, 3]
    files = dict(payload)[1]
    assert sorted(p for p, _, _ in files) == ["/s/u1/a", "/s/u1/b"]
    for _, size, atime in files:
        assert size == 100 and atime > 0


def test_serial_decisions_match_staleness():
    fs = _fs()
    results = parallel_purge_decisions(fs, _activeness(),
                                       RetentionConfig(), NOW, n_ranks=1)
    (result,) = results
    assert isinstance(result, RankDecisions)
    purged_paths = {p for p, _, _ in result.decisions}
    # u1 (initial 90d): /s/u1/a stale.  u2 (both-inactive floor -> 90d):
    # /s/u2/c stale.  u3 (active, 180d): /s/u3/d at 120d survives.
    assert purged_paths == {"/s/u1/a", "/s/u2/c"}
    assert result.files_examined == 4
    assert result.eval_seconds >= 0.0
    assert result.decide_seconds >= 0.0


def test_multirank_decisions_union_equals_serial():
    fs = _fs()
    serial = parallel_purge_decisions(fs, _activeness(), RetentionConfig(),
                                      NOW, n_ranks=1)
    parallel = parallel_purge_decisions(fs, _activeness(), RetentionConfig(),
                                        NOW, n_ranks=3)
    serial_set = {d for r in serial for d in r.decisions}
    parallel_set = {d for r in parallel for d in r.decisions}
    assert serial_set == parallel_set
    assert sum(r.files_examined for r in parallel) == 4
    # Rank 0 carries the evaluation; workers only receive the broadcast.
    assert [r.rank for r in parallel] == [0, 1, 2]


def test_decisions_agree_with_flt_for_initial_rank_users():
    """With every user at the initial rank, parallel decisions equal the
    plain FLT stale set."""
    fs = _fs()
    activeness = {uid: UserActiveness(uid) for uid in (1, 2, 3)}
    (result,) = parallel_purge_decisions(fs, activeness, RetentionConfig(),
                                         NOW, n_ranks=1)
    flt_fs = _fs()
    FixedLifetimePolicy(RetentionConfig()).run(flt_fs, NOW)
    flt_purged = {p for p, _, _ in
                  [(path, 0, 0) for path, _ in _fs().iter_files()
                   if path not in flt_fs]}
    assert {p for p, _, _ in result.decisions} == flt_purged


def test_apply_decisions_full():
    fs = _fs()
    (result,) = parallel_purge_decisions(fs, _activeness(), RetentionConfig(),
                                         NOW, n_ranks=1)
    purged = apply_purge_decisions(fs, result.decisions)
    assert purged == 200
    assert "/s/u1/a" not in fs and "/s/u2/c" not in fs
    assert fs.file_count == 2


def test_apply_decisions_respects_target():
    fs = _fs()
    (result,) = parallel_purge_decisions(fs, _activeness(), RetentionConfig(),
                                         NOW, n_ranks=1)
    purged = apply_purge_decisions(fs, result.decisions, target_bytes=100)
    assert purged == 100
    assert fs.file_count == 3


def test_apply_decisions_idempotent_on_missing():
    fs = _fs()
    decisions = [("/s/u1/a", 1, 100), ("/s/u1/a", 1, 100)]
    assert apply_purge_decisions(fs, decisions) == 100


def test_validates_rank_count():
    with pytest.raises(ValueError):
        parallel_purge_decisions(_fs(), _activeness(), RetentionConfig(),
                                 NOW, n_ranks=0)
