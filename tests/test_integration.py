"""End-to-end integration tests: the headline behaviours of the paper on a
small synthetic dataset, plus cross-policy conservation invariants."""

import pytest

from repro.core import (
    ActiveDRPolicy,
    ActivenessEvaluator,
    ActivenessParams,
    ActivityLedger,
    FixedLifetimePolicy,
    JOB_SUBMISSION,
    PUBLICATION,
    RetentionConfig,
    UserClass,
    activities_from_jobs,
    activities_from_publications,
    classify_all,
    group_counts,
)
from repro.emulation import ACTIVEDR, FLT, ComparisonRunner
from repro.synth import TitanConfig, generate_dataset


@pytest.fixture(scope="module")
def medium_dataset():
    return generate_dataset(TitanConfig(n_users=250, seed=42))


@pytest.fixture(scope="module")
def comparison(medium_dataset):
    return ComparisonRunner(medium_dataset).run()


def test_activedr_reduces_total_misses(comparison):
    """The headline result: same traces, same target, fewer misses."""
    assert comparison.total_misses(ACTIVEDR) < comparison.total_misses(FLT)
    assert comparison.miss_reduction() > 0.0


def test_activedr_retains_more_data(comparison):
    assert (comparison[ACTIVEDR].final_total_bytes
            > comparison[FLT].final_total_bytes)


def test_same_accesses_replayed(comparison):
    assert (comparison[FLT].metrics.total_accesses
            == comparison[ACTIVEDR].metrics.total_accesses)


def test_weekly_triggers_both_policies(comparison):
    assert len(comparison[FLT].reports) == 52
    assert len(comparison[ACTIVEDR].reports) == 52


def test_purge_plus_retain_accounts_every_file(comparison):
    """Within each retention event, purged + retained = files at scan time."""
    for report in comparison[ACTIVEDR].reports:
        assert report.purged_files_total >= 0
        assert report.retained_files_total >= 0
    final = comparison[ACTIVEDR].final_report
    assert final.retained_files_total <= comparison[ACTIVEDR].final_file_count


def test_activeness_skew_matches_paper_shape(medium_dataset):
    """The vast majority of users classify as both-inactive (Fig. 5)."""
    ledger = ActivityLedger()
    ledger.extend(JOB_SUBMISSION, activities_from_jobs(medium_dataset.jobs))
    ledger.extend(PUBLICATION,
                  activities_from_publications(medium_dataset.publications))
    t_c = medium_dataset.config.replay_end - 1
    clipped = ledger.until(t_c)
    for period in (7, 30, 60, 90):
        evaluator = ActivenessEvaluator(ActivenessParams(period_days=period))
        activeness = evaluator.evaluate(
            clipped, t_c, known_uids=[u.uid for u in medium_dataset.users])
        counts = group_counts(classify_all(activeness))
        total = sum(counts.values())
        assert total == 250
        inactive_share = counts[UserClass.BOTH_INACTIVE] / total
        assert inactive_share > 0.80


def test_active_share_grows_with_period(medium_dataset):
    """Fig. 5 trend: a longer period length admits more active users."""
    ledger = ActivityLedger()
    ledger.extend(JOB_SUBMISSION, activities_from_jobs(medium_dataset.jobs))
    t_c = medium_dataset.config.replay_end - 1
    clipped = ledger.until(t_c)
    uids = [u.uid for u in medium_dataset.users]

    def active_count(period):
        evaluator = ActivenessEvaluator(ActivenessParams(period_days=period))
        activeness = evaluator.evaluate(clipped, t_c, known_uids=uids)
        return sum(1 for ua in activeness.values() if ua.op_active)

    assert active_count(90) >= active_count(7)


def test_single_snapshot_same_target_retention(medium_dataset):
    """On one snapshot with one shared purge target, ActiveDR spends the
    purge budget on inactive users and spares active ones."""
    cfg = RetentionConfig(purge_target_utilization=0.5)
    t_c = medium_dataset.config.replay_start

    ledger = ActivityLedger()
    ledger.extend(JOB_SUBMISSION, activities_from_jobs(medium_dataset.jobs))
    ledger.extend(PUBLICATION,
                  activities_from_publications(medium_dataset.publications))
    activeness = ActivenessEvaluator(cfg.activeness).evaluate(
        ledger.until(t_c), t_c, known_uids=[u.uid for u in medium_dataset.users])

    fs_flt = medium_dataset.fresh_filesystem()
    fs_adr = medium_dataset.fresh_filesystem()
    rep_flt = FixedLifetimePolicy(cfg, enforce_target=True).run(
        fs_flt, t_c, activeness=activeness)
    rep_adr = ActiveDRPolicy(cfg).run(fs_adr, t_c, activeness=activeness)

    # Bytes conservation on both policies.
    for fs, rep in ((fs_flt, rep_flt), (fs_adr, rep_adr)):
        assert fs.total_bytes + rep.purged_bytes_total \
            == medium_dataset.filesystem.total_bytes

    # ActiveDR concentrates its purge on the both-inactive group at least
    # as much as FLT does.
    if rep_adr.purged_bytes_total > 0 and rep_flt.purged_bytes_total > 0:
        adr_share = (rep_adr.purged_bytes(UserClass.BOTH_INACTIVE)
                     / rep_adr.purged_bytes_total)
        flt_share = (rep_flt.purged_bytes(UserClass.BOTH_INACTIVE)
                     / rep_flt.purged_bytes_total)
        assert adr_share >= flt_share - 1e-9


def test_emulation_is_deterministic(medium_dataset):
    a = ComparisonRunner(medium_dataset).run()
    b = ComparisonRunner(medium_dataset).run()
    for policy in (FLT, ACTIVEDR):
        assert (a[policy].metrics.total_misses
                == b[policy].metrics.total_misses)
        assert a[policy].final_total_bytes == b[policy].final_total_bytes
