"""Router and result-merge tests for the sharded fleet.

End-to-end fleet identity (kill -9, resume, rebalance) lives in the CI
sharded smoke; these tests cover the in-process pieces: routing
correctness under interleaved producers and the scatter/gather result
merge.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.classification import UserClass
from repro.emulation.emulator import EmulationResult
from repro.server import (HashRing, ShardRouter, SocketListener,
                          merge_tenant_results, publish_events)
from repro.server.ingest import _END
from repro.stream import (EVENT_ACCESS, EVENT_JOB, EVENT_PUBLICATION,
                          EventBatch, StreamEvent)
from repro.traces import AppAccessRecord, JobRecord, PublicationRecord


def _drain(listener: SocketListener) -> dict[str, list]:
    """Collect every routed event per source until each source ends."""
    out: dict[str, list] = {}
    for src in listener.sources():
        events = []
        while True:
            entry = src.queue.get(timeout=30)
            if entry is _END:
                break
            _seq, item = entry
            if isinstance(item, EventBatch):
                events.extend(item.iter_events())
            else:
                events.append(item)
        out[src.name] = events
    return out


def _job_events(uids, ts0):
    return [StreamEvent(ts0 + i, EVENT_JOB,
                        JobRecord(1000 + i, int(uid), ts0 + i, ts0 + i + 1,
                                  ts0 + i + 2, 1, 16))
            for i, uid in enumerate(uids)]


def test_router_routes_interleaved_producers_to_ring_owners():
    ring = HashRing(["w0", "w1"])
    expected_worker = {"jobs": 1, "publications": 1, "accesses": 1}
    with SocketListener("127.0.0.1:0", expected=expected_worker) as l0, \
            SocketListener("127.0.0.1:0", expected=expected_worker) as l1:
        router = ShardRouter(
            "127.0.0.1:0", {"w0": l0.address, "w1": l1.address}, ring,
            expected={"jobs": 2, "publications": 1, "accesses": 1},
            retain=False)
        try:
            all_jobs = _job_events(range(800), ts0=1_000)
            # Two sequenced slices of one source, published concurrently:
            # the second holds off (gap-refused, retried) until the first
            # slice's rows are admitted -- the repo's multi-producer idiom.
            jobs_a, jobs_b = all_jobs[:400], all_jobs[400:]
            accesses = [StreamEvent(3_000 + i, EVENT_ACCESS,
                                    AppAccessRecord(3_000 + i, uid,
                                                    f"/f{uid}", "access"))
                        for i, uid in enumerate(range(0, 800, 7))]
            pubs = [StreamEvent(4_000 + i, EVENT_PUBLICATION,
                                PublicationRecord(i, 4_000 + i,
                                                  [i, 799 - i], 1))
                    for i in range(50)]

            threads = [
                threading.Thread(target=publish_events, args=(
                    router.address, "jobs", jobs_a),
                    kwargs=dict(session="pa", batch_size=16)),
                threading.Thread(target=publish_events, args=(
                    router.address, "jobs", jobs_b),
                    kwargs=dict(session="pb", batch_size=16,
                                seq_offset=len(jobs_a), retry_for=60.0,
                                retry_interval=0.05)),
                threading.Thread(target=publish_events, args=(
                    router.address, "accesses", accesses),
                    kwargs=dict(session="pc", batch_size=16)),
                threading.Thread(target=publish_events, args=(
                    router.address, "publications", pubs),
                    kwargs=dict(session="pd", batch_size=16)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=90)
                assert not t.is_alive()
            assert router.join(timeout=60)

            got0 = _drain(l0)
            got1 = _drain(l1)
        finally:
            router.close()

    by_worker = {"w0": got0, "w1": got1}
    # Jobs and accesses land exactly once, on their uid's ring owner.
    for source, published in (("jobs", all_jobs), ("accesses", accesses)):
        received = {w: by_worker[w][source] for w in ("w0", "w1")}
        assert (len(received["w0"]) + len(received["w1"])
                == len(published))
        for w, events in received.items():
            for ev in events:
                assert ring.owner(ev.payload.uid) == w
        want = {w: sorted((ev.ts, ev.payload.uid) for ev in published
                          if ring.owner(ev.payload.uid) == w)
                for w in ("w0", "w1")}
        for w in ("w0", "w1"):
            got = sorted((ev.ts, ev.payload.uid) for ev in received[w])
            assert got == want[w]

    # A publication reaches every worker owning one of its authors.
    for w in ("w0", "w1"):
        got_ids = sorted(ev.payload.pub_id
                         for ev in by_worker[w]["publications"])
        want_ids = sorted(p.payload.pub_id for p in pubs
                          if any(ring.owner(u) == w
                                 for u in p.payload.author_uids))
        assert got_ids == want_ids

    # Per-source admission order survives the hop: each slice's job
    # timestamps are strictly increasing, so the worker-side
    # subsequence of that slice must be too.
    set_a = {ev.payload.uid for ev in jobs_a}
    for w in ("w0", "w1"):
        ts_from_a = [ev.ts for ev in by_worker[w]["jobs"]
                     if ev.payload.uid in set_a]
        assert ts_from_a == sorted(ts_from_a)


def _tenant_payload(accesses, misses, *, n_days=4, cls=UserClass.BOTH_INACTIVE,
                    group=None, total_bytes=0, files=0):
    return {
        "policy": "FLTPolicy",
        "lifetime_days": 90.0,
        "n_days": n_days,
        "accesses": accesses,
        "misses": misses,
        "group_misses": {str(cls.value): group or [0] * n_days},
        "reports": [],
        "final_total_bytes": total_bytes,
        "final_file_count": files,
    }


def test_merge_tenant_results_sums_disjoint_shards():
    p0 = {"tenants": {"flt": _tenant_payload(
        [1, 2, 3, 4], [0, 1, 0, 0], group=[0, 1, 0, 0],
        total_bytes=100, files=3)}}
    p1 = {"tenants": {"flt": _tenant_payload(
        [4, 3, 2, 1], [1, 0, 0, 1], group=[1, 0, 0, 1],
        total_bytes=50, files=2)}}
    merged = merge_tenant_results([p0, p1])
    assert set(merged) == {"flt"}
    result = merged["flt"]
    assert isinstance(result, EmulationResult)
    assert result.metrics.accesses.tolist() == [5, 5, 5, 5]
    assert result.metrics.misses.tolist() == [1, 1, 0, 1]
    assert (result.metrics.group_misses[UserClass.BOTH_INACTIVE].tolist()
            == [1, 1, 0, 1])
    assert result.final_total_bytes == 150
    assert result.final_file_count == 5


def test_merge_tenant_results_keeps_tenants_separate():
    p0 = {"tenants": {"a": _tenant_payload([1, 0, 0, 0], [0] * 4),
                      "b": _tenant_payload([0, 1, 0, 0], [0] * 4)}}
    p1 = {"tenants": {"a": _tenant_payload([0, 0, 1, 0], [0] * 4)}}
    merged = merge_tenant_results([p0, p1])
    assert merged["a"].metrics.accesses.tolist() == [1, 0, 1, 0]
    assert merged["b"].metrics.accesses.tolist() == [0, 1, 0, 0]


# ---------------------------------------------------------------------------
# rebalance crash windows


class _StubRouter:
    """Just enough router surface for ShardFleet._run_rebalance."""

    def __init__(self, ring):
        self.ring = ring
        self.rows_routed = {name: 0 for name in ring.shards}
        self.max_watermark = 0
        self.calls = []

    def begin_rebalance(self, donor, cut_ts):
        self.calls.append(("begin", donor, cut_ts))

    def commit_rebalance(self, new_ring, cut_ts, new_worker, address):
        self.calls.append(("commit", new_worker))

    def abort_rebalance(self):
        self.calls.append(("abort",))

    def activate_worker(self, name):
        self.calls.append(("activate", name))
        return 0

    def reopen_worker(self, name):
        self.calls.append(("reopen", name))

    def close(self):
        pass


def test_rebalance_reissues_split_to_respawned_donor(tmp_path, monkeypatch):
    """Pending boundary ops are not checkpointed: when the donor
    respawns during waiting-for-clone, the fleet must re-issue the
    shard-split request to the new incarnation or the split is lost
    (ring already flipped, pending rows buffered forever)."""
    import sys
    import time

    from repro.server import shard as shard_mod
    from repro.server.shard import ShardFleet, WorkerSpec

    requests = []

    def fake_admin_request(address, request, timeout=None):
        requests.append(dict(request))
        if request["cmd"] == "health":
            return {"ok": True, "next_boundary": 1}
        assert request["cmd"] == "shard-split"
        return {"ok": True}

    monkeypatch.setattr(shard_mod, "admin_request", fake_admin_request)

    def make_spec(name):
        ck = tmp_path / f"{name}-ck"
        ck.mkdir(exist_ok=True)
        return WorkerSpec(
            name=name, ingest_address=f"127.0.0.1:{9000}",
            admin_address=f"127.0.0.1:{9001}",
            checkpoint_dir=str(ck),
            result_path=str(tmp_path / f"{name}.json"),
            command=[sys.executable, "-c", "pass"])

    ring = HashRing(["s00"])
    router = _StubRouter(ring)
    fleet = ShardFleet(router, [make_spec("s00")],
                       directory=str(tmp_path), replay_start=0, n_days=30,
                       worker_factory=make_spec)
    fleet.spawn_counts["s00"] = 1
    try:
        fleet.start_rebalance(donor="s00")

        def wait_for(pred, what, deadline=20.0):
            t0 = time.monotonic()
            while not pred():
                assert time.monotonic() - t0 < deadline, what
                time.sleep(0.05)

        def splits():
            return [r for r in requests if r["cmd"] == "shard-split"]

        wait_for(lambda: len(splits()) == 1, "original split request")
        wait_for(lambda: fleet.rebalance_log()[0]["status"]
                 == "waiting-for-clone", "waiting-for-clone phase")
        # The donor's supervisor respawns it (crash before boundary B):
        # its resumed incarnation has no queued split.
        fleet.spawn_counts["s00"] = 2
        wait_for(lambda: len(splits()) >= 2, "re-issued split request")
        assert splits()[0] == splits()[1]   # identical request, re-sent
        # The respawned donor executes the split: the clone appears and
        # the rebalance completes.
        clone_dir = fleet.specs["s01"].checkpoint_dir
        (tmp_path / "s01-ck" / "checkpoint-00000001.npz").write_bytes(b"x")
        assert clone_dir == str(tmp_path / "s01-ck")
        wait_for(lambda: fleet.rebalance_log()[0]["status"] == "done",
                 "rebalance completion")
        assert ("activate", "s01") in router.calls
    finally:
        fleet.stop()
