"""Tests for the columnar activity store."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ActivenessEvaluator,
    ActivenessParams,
    Activity,
    ActivityLedger,
    JOB_SUBMISSION,
    PUBLICATION,
    SHELL_LOGIN,
    activities_from_jobs,
    activities_from_publications,
)
from repro.core.incremental import ColumnarActivityStore
from repro.traces import JobRecord, PublicationRecord
from repro.vfs import DAY_SECONDS

T_C = 1_000 * DAY_SECONDS
L = 7 * DAY_SECONDS


def _assert_same(a, b):
    assert set(a) == set(b)
    for uid in a:
        ua, ub = a[uid], b[uid]
        assert ua.has_op == ub.has_op and ua.has_oc == ub.has_oc
        for x, y in ((ua.log_op, ub.log_op), (ua.log_oc, ub.log_oc)):
            if math.isinf(x) or math.isinf(y):
                assert x == y
            else:
                assert x == pytest.approx(y, rel=1e-12, abs=1e-12)
        assert ua.last_ts == ub.last_ts
        assert ua.total_impact == pytest.approx(ub.total_impact)


def test_empty_store():
    store = ColumnarActivityStore()
    assert store.total_activities() == 0
    assert store.types() == []
    result = store.evaluate(T_C, known_uids=[3])
    assert list(result) == [3]
    assert not result[3].has_op


def test_append_and_extend_count():
    store = ColumnarActivityStore()
    store.append(JOB_SUBMISSION, 1, T_C - 5, 2.0)
    assert store.extend(JOB_SUBMISSION,
                        [Activity(1, T_C - 4, 1.0),
                         Activity(2, T_C - 3, 1.0)]) == 2
    assert store.extend(JOB_SUBMISSION, []) == 0
    assert store.total_activities() == 3
    assert store.types() == [JOB_SUBMISSION]


def test_negative_impact_rejected():
    store = ColumnarActivityStore()
    with pytest.raises(ValueError):
        store.append(JOB_SUBMISSION, 1, T_C, -1.0)


def test_matches_ledger_evaluator_on_mixed_types():
    ledger = ActivityLedger()
    store = ColumnarActivityStore()
    entries = [
        (JOB_SUBMISSION, 1, T_C - 5, 10.0),
        (JOB_SUBMISSION, 1, T_C - L - 20, 4.0),
        (JOB_SUBMISSION, 2, T_C - 40 * L, 7.0),
        (SHELL_LOGIN, 1, T_C - 3, 1.0),
        (PUBLICATION, 2, T_C - 2 * L, 8.0),
        (PUBLICATION, 3, T_C - 1, 6.0),
    ]
    for atype, uid, ts, impact in entries:
        ledger.add(atype, Activity(uid, ts, impact))
        store.append(atype, uid, ts, impact)
    params = ActivenessParams(period_days=7)
    expected = ActivenessEvaluator(params).evaluate(ledger, T_C,
                                                    known_uids=[1, 2, 3, 4])
    got = store.evaluate(T_C, params, known_uids=[1, 2, 3, 4])
    _assert_same(expected, got)


def test_clips_future_activities():
    store = ColumnarActivityStore()
    store.append(JOB_SUBMISSION, 1, T_C - 5, 1.0)
    store.append(JOB_SUBMISSION, 1, T_C + 100, 99.0)  # future: invisible
    result = store.evaluate(T_C)
    assert result[1].total_impact == pytest.approx(1.0)
    assert result[1].last_ts == T_C - 5
    # At a later clock the future activity becomes visible.
    later = store.evaluate(T_C + 200)
    assert later[1].total_impact == pytest.approx(100.0)


def test_ingest_jobs_matches_extractor():
    jobs = [JobRecord(i, i % 3, T_C - i * 1000, T_C - i * 1000 + 10,
                      T_C - i * 1000 + 3610, i + 1, 16) for i in range(12)]
    ledger = ActivityLedger()
    ledger.extend(JOB_SUBMISSION, activities_from_jobs(jobs))
    store = ColumnarActivityStore()
    assert store.ingest_jobs(jobs) == 12
    params = ActivenessParams(period_days=7)
    _assert_same(ActivenessEvaluator(params).evaluate(ledger, T_C),
                 store.evaluate(T_C, params))


def test_ingest_publications_matches_extractor():
    pubs = [PublicationRecord(0, T_C - 50, [1, 2, 3], 7),
            PublicationRecord(1, T_C - 2 * L, [2], 0)]
    ledger = ActivityLedger()
    ledger.extend(PUBLICATION, activities_from_publications(pubs))
    store = ColumnarActivityStore()
    assert store.ingest_publications(pubs) == 4
    params = ActivenessParams(period_days=7)
    _assert_same(ActivenessEvaluator(params).evaluate(ledger, T_C),
                 store.evaluate(T_C, params))


def test_incremental_appends_reach_same_state_as_bulk():
    """Feeding the history in many small batches equals one big batch."""
    acts = [Activity(uid, T_C - k * 3600, float(k % 5 + 1))
            for k, uid in enumerate([1, 2, 1, 3, 2, 1, 4, 2] * 10)]
    bulk = ColumnarActivityStore()
    bulk.extend(JOB_SUBMISSION, acts)
    incremental = ColumnarActivityStore()
    for act in acts:
        incremental.extend(JOB_SUBMISSION, [act])
    params = ActivenessParams(period_days=7)
    _assert_same(bulk.evaluate(T_C, params),
                 incremental.evaluate(T_C, params))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 4),
                          st.integers(T_C - 20 * L, T_C),
                          st.floats(0.01, 1e4)),
                min_size=1, max_size=40))
def test_property_store_equals_evaluator(rows):
    ledger = ActivityLedger()
    store = ColumnarActivityStore()
    for uid, ts, impact in rows:
        ledger.add(JOB_SUBMISSION, Activity(uid, ts, impact))
        store.append(JOB_SUBMISSION, uid, ts, impact)
    params = ActivenessParams(period_days=7)
    _assert_same(ActivenessEvaluator(params).evaluate(ledger, T_C),
                 store.evaluate(T_C, params))


def test_reevaluation_after_append_is_consistent():
    store = ColumnarActivityStore()
    store.append(JOB_SUBMISSION, 1, T_C - 2 * L, 1.0)
    first = store.evaluate(T_C)
    assert first[1].has_op
    store.append(JOB_SUBMISSION, 1, T_C - 5, 1.0)
    second = store.evaluate(T_C)
    # New recent activity can only improve recency.
    assert second[1].last_ts > first[1].last_ts
