"""Hostile-path round-trips: spaces, unicode, dotted directories, and the
delimiter guards in the line-oriented trace formats; atomic-write crash
behaviour for the writers that feed them."""

from __future__ import annotations

import gzip
import os

import pytest

from repro.traces.io import (
    atomic_output,
    read_app_log,
    read_users,
    write_app_log,
    write_users,
)
from repro.traces.schema import AppAccessRecord, UserRecord
from repro.vfs.snapshot import (
    SnapshotRecord,
    SnapshotWriter,
    iter_snapshot,
    write_snapshot,
)

HOSTILE_PATHS = [
    "/proj/v1.2/output",                 # dotted directory
    "/proj/a b/run 7/data.out",          # spaces
    "/proj/αβγ/δ εζ/结果.h5",             # unicode, mixed scripts
    "/proj/x/.hidden/..weird/file",      # dot-files and double dots
    "/proj/tab\tname/file",              # embedded tab
    "/proj/trailing./dir/v2..out",
]


@pytest.mark.parametrize("path", HOSTILE_PATHS)
def test_snapshot_record_line_round_trip(path):
    rec = SnapshotRecord(path, 4, 100, 200, 300, 7, flags=1, size=4096)
    assert SnapshotRecord.from_line(rec.to_line()) == rec


def test_snapshot_record_rejects_delimiter_and_newline():
    for bad in ("/proj/a|b/file", "/proj/a\nb/file"):
        with pytest.raises(ValueError):
            SnapshotRecord(bad, 1, 0, 0, 0, 0).to_line()


def test_snapshot_shards_round_trip_hostile_paths(tmp_path):
    records = [SnapshotRecord(p, i + 1, 10 * i, 20 * i, 30 * i, i,
                              size=100 * i)
               for i, p in enumerate(HOSTILE_PATHS)]
    directory = str(tmp_path / "snap")
    write_snapshot(directory, records, n_shards=3)
    loaded = sorted(iter_snapshot(directory), key=lambda r: r.path)
    assert loaded == sorted(records, key=lambda r: r.path)


@pytest.mark.parametrize("path", HOSTILE_PATHS + ["/proj/pipe|name/file"])
def test_app_log_round_trip_hostile_paths(tmp_path, path):
    # The app log carries the path as the *last* field, so even '|' is
    # legal there -- the reader splits at most three times.
    log = str(tmp_path / "app_log.txt.gz")
    records = [AppAccessRecord(1000 + i, 7, path, op)
               for i, op in enumerate(("access", "create", "touch"))]
    assert write_app_log(log, records) == 3
    assert list(read_app_log(log)) == records


def test_app_log_rejects_newline_in_path(tmp_path):
    rec = AppAccessRecord(1, 2, "/proj/a\nb")
    with pytest.raises(ValueError):
        write_app_log(str(tmp_path / "log.txt.gz"), [rec])


def test_users_round_trip_hostile_names(tmp_path):
    users = [UserRecord(1, "Ada Lovelace", 100),
             UserRecord(2, "Δρ. Μαρία", 200),
             UserRecord(3, "tab\tted", 300)]
    path = str(tmp_path / "users.txt.gz")
    assert write_users(path, users) == 3
    assert list(read_users(path)) == users


def test_users_rejects_delimiter_in_name(tmp_path):
    for bad in ("a|b", "a\nb"):
        with pytest.raises(ValueError):
            write_users(str(tmp_path / "users.txt.gz"),
                        [UserRecord(1, bad, 0)])


# ---------------------------------------------------------------------------
# atomic writes


@pytest.mark.parametrize("name", ["plain.txt", "zipped.txt.gz"])
def test_atomic_output_commits_on_success(tmp_path, name):
    path = str(tmp_path / name)
    with atomic_output(path) as fh:
        fh.write("hello αβ\n")
    opener = gzip.open if name.endswith(".gz") else open
    with opener(path, "rt") as fh:
        assert fh.read() == "hello αβ\n"
    assert not os.path.exists(f"{path}.tmp")


@pytest.mark.parametrize("name", ["plain.txt", "zipped.txt.gz"])
def test_atomic_output_preserves_old_content_on_crash(tmp_path, name):
    path = str(tmp_path / name)
    with atomic_output(path) as fh:
        fh.write("original\n")
    with pytest.raises(RuntimeError):
        with atomic_output(path) as fh:
            fh.write("torn half-write")
            raise RuntimeError("simulated crash")
    opener = gzip.open if name.endswith(".gz") else open
    with opener(path, "rt") as fh:
        assert fh.read() == "original\n"
    assert not os.path.exists(f"{path}.tmp")


def test_atomic_output_crash_leaves_no_destination(tmp_path):
    path = str(tmp_path / "fresh.txt")
    with pytest.raises(RuntimeError):
        with atomic_output(path) as fh:
            fh.write("never lands")
            raise RuntimeError("simulated crash")
    assert not os.path.exists(path)
    assert not os.path.exists(f"{path}.tmp")


def test_write_app_log_guard_fires_before_commit(tmp_path):
    # A mid-stream validation error aborts the atomic write: no partial
    # trace file appears.
    path = str(tmp_path / "log.txt.gz")
    records = [AppAccessRecord(1, 2, "/proj/fine"),
               AppAccessRecord(2, 2, "/proj/bad\npath")]
    with pytest.raises(ValueError):
        write_app_log(path, records)
    assert not os.path.exists(path)
    assert not os.path.exists(f"{path}.tmp")


def test_snapshot_writer_abort_removes_tmp_shards(tmp_path):
    directory = str(tmp_path / "snap")
    rec = SnapshotRecord("/proj/a/file", 1, 0, 0, 0, 0)
    with pytest.raises(RuntimeError):
        with SnapshotWriter(directory, n_shards=2) as writer:
            writer.write(rec)
            raise RuntimeError("simulated crash")
    assert os.listdir(directory) == []


def test_snapshot_writer_commit_leaves_only_final_shards(tmp_path):
    directory = str(tmp_path / "snap")
    records = [SnapshotRecord(p, 1, 0, 0, 0, 0) for p in HOSTILE_PATHS]
    with SnapshotWriter(directory, n_shards=2) as writer:
        for rec in records:
            writer.write(rec)
    names = sorted(os.listdir(directory))
    assert names and all(not n.endswith(".tmp") for n in names)
    assert sorted(r.path for r in iter_snapshot(directory)) == \
        sorted(r.path for r in records)
