"""Tests for the ActiveDR retention engine (section 3.4 semantics)."""

import math

import pytest

from repro.core import (
    ActiveDRPolicy,
    ExemptionList,
    RetentionConfig,
    UserActiveness,
    UserClass,
    adjusted_lifetime_seconds,
    purge_target_bytes,
)
from repro.vfs import DAY_SECONDS

from conftest import NOW, make_fs


def _cfg(**kw):
    kw.setdefault("lifetime_days", 90.0)
    kw.setdefault("purge_target_utilization", 0.5)
    return RetentionConfig(**kw)


def _active(uid, log_op=1.0, log_oc=1.0, last_ts=NOW):
    return UserActiveness(uid, log_op=log_op, log_oc=log_oc,
                          has_op=True, has_oc=True, last_ts=last_ts)


def _inactive(uid, last_ts=0):
    return UserActiveness(uid, log_op=-math.inf, log_oc=-math.inf,
                          has_op=True, has_oc=True, last_ts=last_ts)


# ---------------------------------------------------------------- Eq. 7

def test_adjusted_lifetime_eq7():
    cfg = _cfg(lifetime_days=90)
    ua = UserActiveness(1, log_op=math.log(2.0), log_oc=math.log(3.0),
                        has_op=True, has_oc=True)
    got = adjusted_lifetime_seconds(cfg, ua, UserClass.BOTH_ACTIVE)
    assert got == pytest.approx(90 * DAY_SECONDS * 6.0)


def test_adjusted_lifetime_shrinks_for_sub_one_ranks():
    cfg = _cfg()
    ua = UserActiveness(1, log_op=math.log(2.0), log_oc=math.log(0.25),
                        has_op=True, has_oc=True)
    got = adjusted_lifetime_seconds(cfg, ua, UserClass.OPERATION_ACTIVE_ONLY)
    assert got == pytest.approx(90 * DAY_SECONDS * 0.5)


def test_adjusted_lifetime_both_inactive_floored_at_initial():
    cfg = _cfg()
    got = adjusted_lifetime_seconds(cfg, _inactive(1), UserClass.BOTH_INACTIVE)
    assert got == pytest.approx(90 * DAY_SECONDS)


def test_adjusted_lifetime_decay():
    cfg = _cfg()
    base = adjusted_lifetime_seconds(cfg, _inactive(1),
                                     UserClass.BOTH_INACTIVE)
    decayed = adjusted_lifetime_seconds(cfg, _inactive(1),
                                        UserClass.BOTH_INACTIVE,
                                        decay_factor=0.8)
    assert decayed == pytest.approx(base * 0.8)


def test_adjusted_lifetime_huge_rank_never_purges():
    cfg = _cfg()
    ua = UserActiveness(1, log_op=1e6, log_oc=0.0, has_op=True, has_oc=True)
    assert math.isinf(adjusted_lifetime_seconds(cfg, ua,
                                                UserClass.BOTH_ACTIVE))


# ---------------------------------------------------------------- targets

def test_purge_target_bytes():
    fs = make_fs([("/s/a", 1, 800, 0)], capacity=1000)
    assert purge_target_bytes(fs, _cfg()) == 300
    fs2 = make_fs([("/s/a", 1, 400, 0)], capacity=1000)
    assert purge_target_bytes(fs2, _cfg()) == 0
    fs3 = make_fs([("/s/a", 1, 400, 0)], capacity=0)
    assert purge_target_bytes(fs3, _cfg()) == 0


def test_requires_activeness():
    fs = make_fs([("/s/a", 1, 100, 0)])
    with pytest.raises(ValueError):
        ActiveDRPolicy(_cfg()).run(fs, NOW)


def test_below_target_purges_nothing():
    # Usage 40 % of capacity, target 50 %: the procedure stops immediately
    # even though stale files exist.
    fs = make_fs([("/s/a", 1, 400, 365)], capacity=1000)
    report = ActiveDRPolicy(_cfg()).run(fs, NOW,
                                        activeness={1: _inactive(1)})
    assert fs.file_count == 1
    assert report.purged_files_total == 0
    assert report.target_met is True
    assert report.retained_files_total == 1


def test_stops_the_moment_target_is_reached():
    # Two inactive users, plenty of stale data; the target needs only one
    # user's bytes, so the higher-ranked user keeps everything.
    entries = ([(f"/s/u1/f{i}", 1, 100, 365) for i in range(5)]
               + [(f"/s/u2/f{i}", 2, 100, 365) for i in range(5)])
    fs = make_fs(entries)  # capacity 1000, target purge 500
    activeness = {1: _inactive(1, last_ts=0), 2: _inactive(2, last_ts=NOW)}
    report = ActiveDRPolicy(_cfg()).run(fs, NOW, activeness=activeness)
    assert report.purged_bytes_total == 500
    assert fs.user_file_count(1) == 0      # stalest user purged first
    assert fs.user_file_count(2) == 5      # fresher user untouched
    assert report.target_met is True


def test_active_users_protected_by_scan_order():
    entries = ([(f"/s/idle/f{i}", 1, 100, 365) for i in range(5)]
               + [(f"/s/vip/f{i}", 2, 100, 365) for i in range(5)])
    fs = make_fs(entries)
    activeness = {1: _inactive(1), 2: _active(2, log_op=0.1, log_oc=0.1)}
    ActiveDRPolicy(_cfg()).run(fs, NOW, activeness=activeness)
    assert fs.user_file_count(2) == 5
    assert fs.user_file_count(1) == 0


def test_rewards_extended_lifetime():
    # An active user's 120-day-old file survives a purge run that would
    # kill it under FLT, because Eq. 7 extends the lifetime.
    fs = make_fs([("/s/vip/old", 1, 500, 120),
                  ("/s/idle/old", 2, 500, 120)])
    activeness = {1: _active(1, log_op=math.log(2.0), log_oc=0.0),
                  2: _inactive(2)}
    ActiveDRPolicy(_cfg()).run(fs, NOW, activeness=activeness)
    assert "/s/vip/old" in fs        # lifetime 180 days
    assert "/s/idle/old" not in fs   # lifetime 90 days (initial floor)


def test_retrospective_passes_dig_deeper():
    # One inactive user; files at 80 days need the first retro pass
    # (90 * 0.8 = 72 < 80) to reach the target.
    entries = [(f"/s/u/f{i}", 1, 100, 80) for i in range(10)]
    fs = make_fs(entries)  # target 500
    report = ActiveDRPolicy(_cfg()).run(fs, NOW,
                                        activeness={1: _inactive(1)})
    assert report.purged_bytes_total == 500
    assert report.passes_used == 2
    assert report.target_met is True


def test_retrospective_decay_bottoms_out():
    # Files fresher than 90 * 0.8^5 ~ 29.5 days can never be purged; the
    # run exhausts all passes and reports the unmet target.
    entries = [(f"/s/u/f{i}", 1, 100, 20) for i in range(10)]
    fs = make_fs(entries)
    report = ActiveDRPolicy(_cfg()).run(fs, NOW,
                                        activeness={1: _inactive(1)})
    assert report.purged_bytes_total == 0
    assert report.target_met is False
    assert report.passes_used == 6  # initial + 5 retrospective
    assert fs.file_count == 10


def test_retrospective_pass_count_configurable():
    entries = [(f"/s/u/f{i}", 1, 100, 80) for i in range(10)]
    fs = make_fs(entries)
    cfg = _cfg(retrospective_passes=0)
    report = ActiveDRPolicy(cfg).run(fs, NOW, activeness={1: _inactive(1)})
    assert report.purged_bytes_total == 0
    assert report.target_met is False


def test_exemptions_respected_despite_target():
    entries = [("/s/u/keep", 1, 500, 365), ("/s/u/drop", 1, 500, 365)]
    fs = make_fs(entries)
    ex = ExemptionList(paths=["/s/u/keep"])
    report = ActiveDRPolicy(_cfg()).run(fs, NOW,
                                        activeness={1: _inactive(1)},
                                        exemptions=ex)
    assert "/s/u/keep" in fs
    assert "/s/u/drop" not in fs
    assert report.purged_bytes_total == 500


def test_unknown_owners_treated_as_new_users():
    # uid 9 has no activeness entry: initial lifetime, scanned as
    # both-inactive, but 50-day-old files survive the first pass.
    fs = make_fs([("/s/new/f", 9, 400, 50),
                  ("/s/old/f", 1, 600, 365)], capacity=1000)
    report = ActiveDRPolicy(_cfg()).run(fs, NOW,
                                        activeness={1: _inactive(1)})
    assert "/s/new/f" in fs
    assert "/s/old/f" not in fs
    assert report.target_met is True


def test_group_scan_order_end_to_end():
    # Target forces purging through inactive AND oc-active users before
    # op-active users are touched.
    entries = [("/s/i/f", 1, 300, 365), ("/s/oc/f", 2, 300, 365),
               ("/s/op/f", 3, 300, 365), ("/s/ba/f", 4, 300, 365)]
    fs = make_fs(entries)  # capacity 1200, target 600
    activeness = {
        1: _inactive(1),
        2: UserActiveness(2, log_op=-1.0, log_oc=1.0, has_op=True, has_oc=True),
        3: UserActiveness(3, log_op=1.0, log_oc=-1.0, has_op=True, has_oc=True),
        4: _active(4),
    }
    report = ActiveDRPolicy(_cfg()).run(fs, NOW, activeness=activeness)
    assert "/s/i/f" not in fs
    assert "/s/oc/f" not in fs
    assert "/s/op/f" in fs
    assert "/s/ba/f" in fs
    assert report.purged_bytes(UserClass.BOTH_INACTIVE) == 300
    assert report.purged_bytes(UserClass.OUTCOME_ACTIVE_ONLY) == 300


def test_survivors_recorded_per_group():
    fs = make_fs([("/s/a/f", 1, 100, 1)], capacity=10_000)
    report = ActiveDRPolicy(_cfg()).run(fs, NOW, activeness={1: _active(1)})
    assert report.retained_bytes(UserClass.BOTH_ACTIVE) == 100


def test_zero_rank_as_initial_toggle():
    # With the fallback disabled, a collapsed-rank op-active-only user has
    # lifetime 0 and loses even fresh files once their group is reached.
    fs = make_fs([("/s/u/f", 1, 1000, 5)], capacity=100)  # target: purge a lot
    ua = UserActiveness(1, log_op=2.0, log_oc=-math.inf,
                        has_op=True, has_oc=True)
    cfg = _cfg(zero_rank_as_initial=False)
    ActiveDRPolicy(cfg).run(fs, NOW, activeness={1: ua})
    assert "/s/u/f" not in fs

    fs2 = make_fs([("/s/u/f", 1, 1000, 5)], capacity=100)
    ActiveDRPolicy(_cfg()).run(fs2, NOW, activeness={1: ua})
    assert "/s/u/f" in fs2  # fallback: rank treated as initial 1.0


def test_report_metadata():
    fs = make_fs([("/s/a", 1, 10, 5)])
    report = ActiveDRPolicy(_cfg()).run(fs, NOW, activeness={1: _inactive(1)})
    assert report.policy == "ActiveDR"
    assert report.t_c == NOW
