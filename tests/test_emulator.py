"""Tests for the trace-replay emulator."""

import pytest

from repro.core import (
    ActivenessParams,
    FixedLifetimePolicy,
    RetentionConfig,
    UserClass,
)
from repro.emulation import (
    Emulator,
    EmulatorConfig,
    deterministic_file_size,
)
from repro.traces import AppAccessRecord, JobRecord
from repro.vfs import DAY_SECONDS

from conftest import make_fs

START = 1_460_000_000 - (1_460_000_000 % DAY_SECONDS)  # day-aligned
END = START + 30 * DAY_SECONDS


def _emulator(lifetime=90.0, trigger=7, emu_cfg=None):
    cfg = RetentionConfig(lifetime_days=lifetime, purge_trigger_days=trigger,
                          activeness=ActivenessParams(period_days=7))
    return Emulator(FixedLifetimePolicy(cfg), cfg.activeness, emu_cfg)


def _fs(entries):
    fs = make_fs([])
    from repro.vfs import FileMeta
    for path, uid, size, age_days in entries:
        atime = START - int(age_days * DAY_SECONDS)
        fs.add_file(path, FileMeta(size, atime, atime, atime, uid))
    fs.freeze_capacity()
    return fs


def test_rejects_bad_window():
    em = _emulator()
    with pytest.raises(ValueError):
        em.run(_fs([]), [], [], [], START, START)


def test_hit_refreshes_atime_and_counts_access():
    fs = _fs([("/s/a", 1, 10, 5)])
    accesses = [AppAccessRecord(START + DAY_SECONDS, 1, "/s/a", "access")]
    result = _emulator().run(fs, accesses, [], [], START, END)
    assert result.metrics.total_accesses == 1
    assert result.metrics.total_misses == 0
    assert fs.stat("/s/a").atime == START + DAY_SECONDS


def test_missing_path_counts_miss():
    fs = _fs([])
    accesses = [AppAccessRecord(START + 100, 1, "/s/ghost", "access")]
    result = _emulator().run(fs, accesses, [], [], START, END)
    assert result.metrics.total_misses == 1
    assert result.metrics.total_group_misses(UserClass.BOTH_INACTIVE) == 1


def test_miss_not_restored_by_default():
    fs = _fs([])
    accesses = [AppAccessRecord(START + 100, 1, "/s/g", "access"),
                AppAccessRecord(START + 200, 1, "/s/g", "access")]
    result = _emulator().run(fs, accesses, [], [], START, END)
    assert result.metrics.total_misses == 2  # misses repeat, paper-faithful


def test_restore_on_miss():
    fs = _fs([])
    accesses = [AppAccessRecord(START + 100, 1, "/s/g", "access"),
                AppAccessRecord(START + 200, 1, "/s/g", "access")]
    emu = _emulator(emu_cfg=EmulatorConfig(restore_on_miss=True))
    result = emu.run(fs, accesses, [], [], START, END)
    assert result.metrics.total_misses == 1
    assert "/s/g" in fs


def test_create_adds_file_and_never_misses():
    fs = _fs([])
    accesses = [AppAccessRecord(START + 100, 1, "/s/new.out", "create")]
    result = _emulator().run(fs, accesses, [], [], START, END)
    assert result.metrics.total_misses == 0
    assert result.metrics.total_accesses == 0
    meta = fs.stat("/s/new.out")
    assert meta is not None
    assert meta.size == deterministic_file_size("/s/new.out")
    assert meta.uid == 1


def test_create_on_existing_touches():
    fs = _fs([("/s/a", 1, 10, 5)])
    old_atime = fs.stat("/s/a").atime
    accesses = [AppAccessRecord(START + 100, 1, "/s/a", "create")]
    _emulator().run(fs, accesses, [], [], START, END)
    assert fs.stat("/s/a").atime > old_atime


def test_creates_can_be_disabled():
    fs = _fs([])
    accesses = [AppAccessRecord(START + 100, 1, "/s/new.out", "create")]
    emu = _emulator(emu_cfg=EmulatorConfig(apply_creates=False))
    emu.run(fs, accesses, [], [], START, END)
    assert "/s/new.out" not in fs


def test_touch_refreshes_but_never_misses():
    fs = _fs([("/s/a", 1, 10, 5)])
    accesses = [AppAccessRecord(START + 100, 1, "/s/a", "touch"),
                AppAccessRecord(START + 100, 1, "/s/ghost", "touch")]
    result = _emulator().run(fs, accesses, [], [], START, END)
    assert result.metrics.total_misses == 0
    assert result.metrics.total_accesses == 0
    assert fs.stat("/s/a").atime == START + 100


def test_purge_trigger_cadence():
    fs = _fs([("/s/a", 1, 10, 5)])
    result = _emulator(trigger=7).run(fs, [], [], [], START, END)
    # Days 7, 14, 21, 28 in a 30-day window.
    assert len(result.reports) == 4
    assert [r.t_c for r in result.reports] == [
        START + 7 * DAY_SECONDS, START + 14 * DAY_SECONDS,
        START + 21 * DAY_SECONDS, START + 28 * DAY_SECONDS]


def test_purge_removes_then_access_misses():
    # File is 88 days old at start; at the day-7 trigger it exceeds the
    # 90-day lifetime and is purged; the later access misses.
    fs = _fs([("/s/a", 1, 10, 88)])
    accesses = [AppAccessRecord(START + 10 * DAY_SECONDS, 1, "/s/a",
                                "access")]
    result = _emulator().run(fs, accesses, [], [], START, END)
    assert result.metrics.total_misses == 1
    assert "/s/a" not in fs


def test_access_before_purge_saves_file():
    fs = _fs([("/s/a", 1, 10, 88)])
    accesses = [AppAccessRecord(START + 2 * DAY_SECONDS, 1, "/s/a", "access"),
                AppAccessRecord(START + 20 * DAY_SECONDS, 1, "/s/a",
                                "access")]
    result = _emulator().run(fs, accesses, [], [], START, END)
    assert result.metrics.total_misses == 0
    assert "/s/a" in fs


def test_activity_feed_incremental_and_classes_update():
    # A user submitting jobs every day becomes operation-active at the
    # first trigger evaluation; misses after that are attributed to the
    # op-active group.
    jobs = [JobRecord(i, 1, START + i * DAY_SECONDS,
                      START + i * DAY_SECONDS + 10,
                      START + i * DAY_SECONDS + 3610, 1, 16)
            for i in range(8)]
    fs = _fs([])
    accesses = [AppAccessRecord(START + 9 * DAY_SECONDS, 1, "/s/ghost",
                                "access")]
    result = _emulator().run(fs, accesses, jobs, [], START, END,
                             known_uids=[1])
    assert result.metrics.total_group_misses(
        UserClass.OPERATION_ACTIVE_ONLY) == 1
    assert len(result.group_count_history) >= 2


def test_final_state_recorded():
    fs = _fs([("/s/a", 1, 10, 1)])
    result = _emulator().run(fs, [], [], [], START, END, known_uids=[1])
    assert result.final_total_bytes == 10
    assert result.final_file_count == 1
    assert result.final_classes[1] is UserClass.BOTH_INACTIVE


def test_deterministic_file_size_stable_and_bounded():
    a = deterministic_file_size("/s/x/y.out")
    assert a == deterministic_file_size("/s/x/y.out")
    assert 8 << 10 <= a <= 64 << 20
    assert deterministic_file_size("/s/other") != a or True  # just bounded


def test_emulator_respects_exemptions():
    """A reserved stale file survives the replay's purge triggers."""
    from repro.core import ExemptionList
    fs = _fs([("/s/keep", 1, 10, 88), ("/s/drop", 1, 10, 88)])
    em = _emulator()
    em.exemptions = ExemptionList(paths=["/s/keep"])
    em.run(fs, [], [], [], START, END)
    assert "/s/keep" in fs
    assert "/s/drop" not in fs


def test_emulator_exemptions_via_constructor():
    from repro.core import (ExemptionList, FixedLifetimePolicy,
                            RetentionConfig)
    from repro.emulation import Emulator
    cfg = RetentionConfig()
    em = Emulator(FixedLifetimePolicy(cfg), cfg.activeness,
                  exemptions=ExemptionList(directories=["/s"]))
    fs = _fs([("/s/a", 1, 10, 300)])
    em.run(fs, [], [], [], START, END)
    assert "/s/a" in fs
