"""Unit and property tests for the compact prefix tree."""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vfs import PathTrie, join_path, split_path


# ---------------------------------------------------------------- helpers

def _component() -> st.SearchStrategy[str]:
    return st.text(alphabet=string.ascii_lowercase + string.digits + "._-",
                   min_size=1, max_size=6)


def _path() -> st.SearchStrategy[str]:
    return st.lists(_component(), min_size=1, max_size=6).map(
        lambda parts: "/" + "/".join(parts))


# ---------------------------------------------------------------- split/join

def test_split_path_basic():
    assert split_path("/a/b/c") == ("a", "b", "c")


def test_split_path_collapses_slashes():
    assert split_path("//a///b/") == ("a", "b")


def test_split_path_root():
    assert split_path("/") == ()


def test_join_path_inverse():
    assert join_path(("a", "b")) == "/a/b"


@given(_path())
def test_split_join_roundtrip(path):
    assert join_path(split_path(path)) == path


# ---------------------------------------------------------------- basics

def test_empty_trie():
    t = PathTrie()
    assert len(t) == 0
    assert not t
    assert "/a" not in t
    assert t.lookup("/a") is None
    assert t.lookup("/a", 7) == 7


def test_insert_lookup():
    t = PathTrie()
    assert t.insert("/a/b/c", 1) is True
    assert t.lookup("/a/b/c") == 1
    assert "/a/b/c" in t
    assert len(t) == 1


def test_insert_overwrite_returns_false():
    t = PathTrie()
    assert t.insert("/x", 1)
    assert t.insert("/x", 2) is False
    assert t.lookup("/x") == 2
    assert len(t) == 1


def test_insert_root_rejected():
    t = PathTrie()
    with pytest.raises(ValueError):
        t.insert("/")


def test_prefix_is_not_member():
    t = PathTrie()
    t.insert("/a/b/c", 1)
    assert "/a/b" not in t
    assert "/a" not in t
    assert t.lookup("/a/b") is None


def test_extension_is_not_member():
    t = PathTrie()
    t.insert("/a/b", 1)
    assert "/a/b/c" not in t


def test_nested_paths_coexist():
    t = PathTrie()
    t.insert("/a/b", 1)
    t.insert("/a/b/c", 2)
    assert t.lookup("/a/b") == 1
    assert t.lookup("/a/b/c") == 2
    assert len(t) == 2


def test_sibling_split():
    t = PathTrie()
    t.insert("/proj/run1/out.h5", 1)
    t.insert("/proj/run2/out.h5", 2)
    assert t.lookup("/proj/run1/out.h5") == 1
    assert t.lookup("/proj/run2/out.h5") == 2
    assert t.count_prefix("/proj") == 2


# ---------------------------------------------------------------- deletion

def test_delete_present():
    t = PathTrie()
    t.insert("/a/b", 1)
    assert t.delete("/a/b") is True
    assert "/a/b" not in t
    assert len(t) == 0


def test_delete_absent():
    t = PathTrie()
    t.insert("/a/b", 1)
    assert t.delete("/a/c") is False
    assert t.delete("/a") is False
    assert t.delete("/a/b/c") is False
    assert len(t) == 1


def test_delete_root_noop():
    t = PathTrie()
    assert t.delete("/") is False


def test_delete_keeps_sibling():
    t = PathTrie()
    t.insert("/a/b", 1)
    t.insert("/a/c", 2)
    t.delete("/a/b")
    assert t.lookup("/a/c") == 2
    assert len(t) == 1


def test_delete_interior_keeps_descendant():
    t = PathTrie()
    t.insert("/a/b", 1)
    t.insert("/a/b/c", 2)
    assert t.delete("/a/b")
    assert t.lookup("/a/b/c") == 2
    assert "/a/b" not in t


def test_delete_recompresses():
    t = PathTrie()
    t.insert("/a/b/c/d", 1)
    t.insert("/a/b/x", 2)
    nodes_before = t.node_count()
    t.delete("/a/b/x")
    assert t.node_count() < nodes_before
    assert t.lookup("/a/b/c/d") == 1


def test_clear():
    t = PathTrie()
    for i in range(10):
        t.insert(f"/d/f{i}", i)
    t.clear()
    assert len(t) == 0
    assert list(t.items()) == []


# ---------------------------------------------------------------- prefixes

def test_count_prefix():
    t = PathTrie()
    t.insert("/u/alice/a", 1)
    t.insert("/u/alice/b", 1)
    t.insert("/u/bob/a", 1)
    assert t.count_prefix("/u") == 3
    assert t.count_prefix("/u/alice") == 2
    assert t.count_prefix("/u/bob") == 1
    assert t.count_prefix("/u/carol") == 0
    assert t.count_prefix("/") == 3


def test_count_prefix_mid_edge():
    # Prefix that ends inside a compressed edge still counts the subtree.
    t = PathTrie()
    t.insert("/a/b/c/d", 1)
    assert t.count_prefix("/a/b") == 1


def test_has_prefix():
    t = PathTrie()
    t.insert("/x/y/z", 1)
    assert t.has_prefix("/x")
    assert t.has_prefix("/x/y/z")
    assert not t.has_prefix("/x/z")


def test_covering_prefix():
    t = PathTrie()
    t.insert("/data/reserved", True)
    assert t.covering_prefix("/data/reserved/f.h5") == "/data/reserved"
    assert t.covering_prefix("/data/reserved") == "/data/reserved"
    assert t.covering_prefix("/data/other/f.h5") is None
    assert t.covering_prefix("/data") is None


def test_covering_prefix_picks_shortest():
    t = PathTrie()
    t.insert("/a", 1)
    t.insert("/a/b", 2)
    assert t.covering_prefix("/a/b/c") == "/a"


# ---------------------------------------------------------------- iteration

def test_iteration_sorted():
    t = PathTrie()
    paths = ["/z", "/a/2", "/a/10", "/m/x/y"]
    for p in paths:
        t.insert(p, p)
    assert [p for p, _ in t.items()] == sorted(paths, key=split_path)


def test_iter_prefix_scopes():
    t = PathTrie()
    t.insert("/u/a/f1", 1)
    t.insert("/u/a/f2", 2)
    t.insert("/u/b/f3", 3)
    got = dict(t.iter_prefix("/u/a"))
    assert got == {"/u/a/f1": 1, "/u/a/f2": 2}


def test_iter_prefix_absent():
    t = PathTrie()
    t.insert("/u/a", 1)
    assert list(t.iter_prefix("/nope")) == []


def test_dunder_iter_yields_paths():
    t = PathTrie()
    t.insert("/a", 1)
    t.insert("/b", 2)
    assert sorted(t) == ["/a", "/b"]


# ---------------------------------------------------------------- properties

@settings(max_examples=60, deadline=None)
@given(st.dictionaries(_path(), st.integers(), min_size=0, max_size=40))
def test_trie_matches_dict(model):
    t = PathTrie()
    for path, value in model.items():
        t.insert(path, value)
    assert len(t) == len(model)
    for path, value in model.items():
        assert t.lookup(path) == value
    assert dict(t.items()) == model


@settings(max_examples=60, deadline=None)
@given(st.lists(_path(), min_size=1, max_size=40),
       st.data())
def test_trie_delete_matches_dict(paths, data):
    model = {p: i for i, p in enumerate(paths)}
    t = PathTrie()
    for p, v in model.items():
        t.insert(p, v)
    to_delete = data.draw(st.lists(st.sampled_from(paths), max_size=20))
    for p in to_delete:
        expected = p in model
        assert t.delete(p) == expected
        model.pop(p, None)
    assert dict(t.items()) == model
    assert len(t) == len(model)


@settings(max_examples=40, deadline=None)
@given(st.dictionaries(_path(), st.integers(), min_size=1, max_size=30))
def test_count_prefix_consistent_with_iteration(model):
    t = PathTrie()
    for p, v in model.items():
        t.insert(p, v)
    # Probe with every stored path's parent components.
    for p in model:
        parts = split_path(p)
        for k in range(len(parts) + 1):
            prefix = "/" + "/".join(parts[:k])
            expected = sum(1 for q in model
                           if split_path(q)[:k] == parts[:k])
            assert t.count_prefix(prefix) == expected
