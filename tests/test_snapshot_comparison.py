"""Tests for advance_filesystem and the single-snapshot comparison harness."""

import pytest

from repro.core import UserClass
from repro.emulation import (
    ACTIVEDR,
    FLT,
    advance_filesystem,
    deterministic_file_size,
    single_snapshot_comparison,
)
from repro.traces import AppAccessRecord
from repro.vfs import DAY_SECONDS, FileMeta, VirtualFileSystem

from conftest import NOW, make_fs


# ---------------------------------------------------------------- advance

def test_advance_touches_existing():
    fs = make_fs([("/s/a", 1, 10, 30)])
    accesses = [AppAccessRecord(NOW - 100, 1, "/s/a", "access")]
    applied = advance_filesystem(fs, accesses, NOW)
    assert applied == 1
    assert fs.stat("/s/a").atime == NOW - 100


def test_advance_stops_at_until_ts():
    fs = make_fs([("/s/a", 1, 10, 30)])
    old_atime = fs.stat("/s/a").atime
    accesses = [AppAccessRecord(NOW - 100, 1, "/s/a", "access"),
                AppAccessRecord(NOW + 100, 1, "/s/a", "access")]
    applied = advance_filesystem(fs, accesses, NOW)
    assert applied == 1
    assert fs.stat("/s/a").atime == NOW - 100


def test_advance_materializes_creates():
    fs = make_fs([])
    accesses = [AppAccessRecord(NOW - 50, 3, "/s/new.out", "create")]
    advance_filesystem(fs, accesses, NOW)
    meta = fs.stat("/s/new.out")
    assert meta is not None
    assert meta.size == deterministic_file_size("/s/new.out")
    assert meta.uid == 3


def test_advance_creates_disabled():
    fs = make_fs([])
    accesses = [AppAccessRecord(NOW - 50, 3, "/s/new.out", "create")]
    advance_filesystem(fs, accesses, NOW, apply_creates=False)
    assert "/s/new.out" not in fs


def test_advance_never_counts_misses():
    # Accessing a missing path during advance is a no-op, not an error.
    fs = make_fs([])
    accesses = [AppAccessRecord(NOW - 50, 1, "/s/ghost", "access"),
                AppAccessRecord(NOW - 40, 1, "/s/ghost", "touch")]
    assert advance_filesystem(fs, accesses, NOW) == 2
    assert fs.file_count == 0


# ---------------------------------------------------------------- harness

@pytest.fixture(scope="module")
def snapshot_reports(tiny_dataset):
    return single_snapshot_comparison(tiny_dataset, lifetimes=(30.0, 90.0))


def test_harness_structure(snapshot_reports):
    assert set(snapshot_reports) == {30.0, 90.0}
    for lifetime, reports in snapshot_reports.items():
        assert set(reports) == {FLT, ACTIVEDR}
        for name, report in reports.items():
            assert report.lifetime_days == lifetime
            assert report.t_c == reports[FLT].t_c


def test_harness_same_initial_state(snapshot_reports):
    """Purged + retained must be identical across policies (same state)."""
    for reports in snapshot_reports.values():
        flt_total = (reports[FLT].purged_bytes_total
                     + reports[FLT].retained_bytes_total)
        adr_total = (reports[ACTIVEDR].purged_bytes_total
                     + reports[ACTIVEDR].retained_bytes_total)
        assert flt_total == adr_total


def test_harness_same_target(snapshot_reports):
    for reports in snapshot_reports.values():
        assert reports[FLT].target_bytes == reports[ACTIVEDR].target_bytes


def test_harness_table5_table6_mirror(snapshot_reports):
    """Same initial state => retained diff mirrors purged diff exactly."""
    for reports in snapshot_reports.values():
        for group in UserClass:
            retained_diff = (reports[ACTIVEDR].retained_bytes(group)
                             - reports[FLT].retained_bytes(group))
            purged_diff = (reports[FLT].purged_bytes(group)
                           - reports[ACTIVEDR].purged_bytes(group))
            assert retained_diff == purged_diff


def test_harness_activedr_spares_active_users(snapshot_reports):
    for reports in snapshot_reports.values():
        adr = reports[ACTIVEDR]
        for group in (UserClass.BOTH_ACTIVE, UserClass.OPERATION_ACTIVE_ONLY,
                      UserClass.OUTCOME_ACTIVE_ONLY):
            assert adr.purged_bytes(group) <= reports[FLT].purged_bytes(group)
