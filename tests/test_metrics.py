"""Tests for the daily replay metrics."""

import numpy as np
import pytest

from repro.core import UserClass
from repro.emulation import DailyMetrics


def test_requires_positive_days():
    with pytest.raises(ValueError):
        DailyMetrics(0)


def test_record_and_totals():
    m = DailyMetrics(5)
    m.record_access(0)
    m.record_access(0)
    m.record_miss(0, UserClass.BOTH_ACTIVE)
    m.record_access(3)
    m.record_miss(3, UserClass.BOTH_INACTIVE)
    assert m.total_accesses == 3
    assert m.total_misses == 2
    assert m.total_group_misses(UserClass.BOTH_ACTIVE) == 1
    assert m.total_group_misses(UserClass.OUTCOME_ACTIVE_ONLY) == 0


def test_miss_ratio_handles_zero_access_days():
    m = DailyMetrics(3)
    m.record_access(1)
    m.record_miss(1, UserClass.BOTH_INACTIVE)
    ratios = m.miss_ratio()
    np.testing.assert_allclose(ratios, [0.0, 1.0, 0.0])


def test_monthly_group_misses_folding():
    m = DailyMetrics(65)
    for day in (0, 29, 30, 64):
        m.record_miss(day, UserClass.BOTH_ACTIVE)
    series = m.monthly_group_misses(UserClass.BOTH_ACTIVE, days_per_month=30)
    assert series.tolist() == [2, 1, 1]


def test_monthly_handles_partial_tail():
    m = DailyMetrics(31)
    m.record_miss(30, UserClass.BOTH_INACTIVE)
    series = m.monthly_group_misses(UserClass.BOTH_INACTIVE, 30)
    assert series.tolist() == [0, 1]
