"""Tests for user classification and the retention scan order."""

import math

from repro.core import (
    GROUP_SCAN_ORDER,
    UserActiveness,
    UserClass,
    classify,
    classify_all,
    group_counts,
    scan_ordered_uids,
)


def _ua(uid, op=None, oc=None, last_ts=-1, impact=0.0):
    """op/oc: None = no history, else the log rank."""
    return UserActiveness(
        uid,
        log_op=op if op is not None else 0.0,
        log_oc=oc if oc is not None else 0.0,
        has_op=op is not None,
        has_oc=oc is not None,
        last_ts=last_ts,
        total_impact=impact,
    )


def test_classify_quadrants():
    assert classify(_ua(1, op=0.5, oc=0.5)) is UserClass.BOTH_ACTIVE
    assert classify(_ua(1, op=0.5, oc=-0.5)) is UserClass.OPERATION_ACTIVE_ONLY
    assert classify(_ua(1, op=-0.5, oc=0.5)) is UserClass.OUTCOME_ACTIVE_ONLY
    assert classify(_ua(1, op=-0.5, oc=-0.5)) is UserClass.BOTH_INACTIVE


def test_classify_boundary_phi_equals_one_is_active():
    assert classify(_ua(1, op=0.0, oc=0.0)) is UserClass.BOTH_ACTIVE


def test_classify_no_history_is_inactive():
    assert classify(_ua(1)) is UserClass.BOTH_INACTIVE
    assert classify(_ua(1, op=5.0)) is UserClass.OPERATION_ACTIVE_ONLY
    assert classify(_ua(1, oc=5.0)) is UserClass.OUTCOME_ACTIVE_ONLY


def test_classify_collapsed_rank_is_inactive():
    assert classify(_ua(1, op=-math.inf, oc=-math.inf)) is UserClass.BOTH_INACTIVE


def test_classify_all_and_group_counts():
    users = {
        1: _ua(1, op=1.0, oc=1.0),
        2: _ua(2, op=1.0, oc=-1.0),
        3: _ua(3),
        4: _ua(4),
    }
    classes = classify_all(users)
    counts = group_counts(classes)
    assert counts[UserClass.BOTH_ACTIVE] == 1
    assert counts[UserClass.OPERATION_ACTIVE_ONLY] == 1
    assert counts[UserClass.BOTH_INACTIVE] == 2
    assert counts[UserClass.OUTCOME_ACTIVE_ONLY] == 0


def test_scan_order_group_sequence():
    assert GROUP_SCAN_ORDER == (UserClass.BOTH_INACTIVE,
                                UserClass.OUTCOME_ACTIVE_ONLY,
                                UserClass.OPERATION_ACTIVE_ONLY,
                                UserClass.BOTH_ACTIVE)
    users = {
        1: _ua(1, op=1.0, oc=1.0),        # both active
        2: _ua(2, op=1.0, oc=-1.0),       # op only
        3: _ua(3, op=-1.0, oc=1.0),       # oc only
        4: _ua(4),                        # both inactive
    }
    order = scan_ordered_uids(users)
    assert [cls for cls, _ in order] == list(GROUP_SCAN_ORDER)
    assert [uids for _, uids in order] == [[4], [3], [2], [1]]


def test_scan_order_ascending_rank_within_inactive():
    users = {
        1: _ua(1, op=-0.1, oc=-1.0),
        2: _ua(2, op=-2.0, oc=-1.0),
        3: _ua(3, op=-1.0, oc=-1.0),
    }
    order = dict(scan_ordered_uids(users))
    assert order[UserClass.BOTH_INACTIVE] == [2, 3, 1]


def test_scan_order_active_groups_sort_by_outcome_first():
    # Section 3.4: op-active-only and both-active ascend by outcome rank.
    users = {
        1: _ua(1, op=2.0, oc=3.0),
        2: _ua(2, op=3.0, oc=1.0),
        3: _ua(3, op=1.0, oc=2.0),
    }
    order = dict(scan_ordered_uids(users))
    assert order[UserClass.BOTH_ACTIVE] == [2, 3, 1]


def test_scan_order_staleness_tiebreak():
    # All collapse to rank 0 -> older last activity is purged first.
    users = {
        1: _ua(1, op=-math.inf, last_ts=500),
        2: _ua(2, op=-math.inf, last_ts=100),
        3: _ua(3, op=-math.inf, last_ts=300),
    }
    order = dict(scan_ordered_uids(users))
    assert order[UserClass.BOTH_INACTIVE] == [2, 3, 1]


def test_scan_order_impact_tiebreak_then_uid():
    users = {
        5: _ua(5, op=-math.inf, last_ts=100, impact=10.0),
        6: _ua(6, op=-math.inf, last_ts=100, impact=5.0),
        7: _ua(7, op=-math.inf, last_ts=100, impact=5.0),
    }
    order = dict(scan_ordered_uids(users))
    assert order[UserClass.BOTH_INACTIVE] == [6, 7, 5]


def test_no_history_sorts_before_collapsed_history():
    # has_op=False sorts as -inf rank with last_ts=-1: first to purge.
    users = {
        1: _ua(1, op=-math.inf, last_ts=100),
        2: _ua(2),
    }
    order = dict(scan_ordered_uids(users))
    assert order[UserClass.BOTH_INACTIVE] == [2, 1]


def test_labels():
    assert UserClass.BOTH_ACTIVE.label == "Both Active"
    assert UserClass.BOTH_INACTIVE.label == "Both Inactive"
