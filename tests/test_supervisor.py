"""Supervisor state machine, driven with a fake child.

Everything is injectable (spawn / sleep / clock), so these tests pin the
exact behavior: the seeded backoff schedule, the non-retryable
passthrough, the consecutive-crash give-up bound, the healthy-uptime
reset, and the resume-flag handoff.
"""

from __future__ import annotations

import itertools

from repro.server.supervisor import (EXIT_GIVE_UP, NON_RETRYABLE,
                                     BackoffPolicy, Supervisor)


def run_script(script, *, command=("serve",), backoff=None,
               should_resume=None, on_spawn=None):
    """Drive a Supervisor through ``script`` = [(returncode, uptime), ...].

    Returns ``(exit_code, supervisor, sleeps, commands)``.
    """
    clock = [0.0]
    sleeps: list[float] = []
    commands: list[list[str]] = []
    lifetimes = iter(script)

    class FakeChild:
        def __init__(self, rc, uptime):
            self.rc, self.uptime = rc, uptime

        def wait(self):
            clock[0] += self.uptime
            return self.rc

    def spawn(cmd):
        commands.append(list(cmd))
        if on_spawn is not None:
            on_spawn(len(commands))
        rc, uptime = next(lifetimes)
        return FakeChild(rc, uptime)

    supervisor = Supervisor(
        list(command), backoff=backoff, should_resume=should_resume,
        spawn=spawn, sleep=sleeps.append, clock=lambda: clock[0],
        log=lambda line: None)
    return supervisor.run(), supervisor, sleeps, commands


def test_clean_exit_passes_through():
    rc, sup, sleeps, commands = run_script([(0, 1.0)])
    assert rc == 0
    assert sup.report.final_returncode == 0
    assert sup.report.restarts == 0
    assert not sup.report.gave_up
    assert sleeps == []
    assert commands == [["serve"]]


def test_non_retryable_exit_is_not_restarted():
    assert 3 in NON_RETRYABLE
    rc, sup, sleeps, _ = run_script([(3, 1.0)])
    assert rc == 3
    assert sup.report.final_returncode == 3
    assert len(sup.report.attempts) == 1
    assert sleeps == []


def test_crash_restarts_follow_seeded_backoff_schedule():
    backoff = BackoffPolicy(base=0.5, multiplier=2.0, max_delay=30.0,
                            jitter=0.1, seed=42, max_restarts=10,
                            healthy_seconds=100.0)
    crashes = [(1, 0.1)] * 4
    rc, sup, sleeps, _ = run_script(crashes + [(0, 1.0)], backoff=backoff)
    assert rc == 0
    expected = list(itertools.islice(backoff.delays(), 4))
    assert sleeps == expected
    # Exponential shape under the jitter band, capped at max_delay.
    for n, delay in enumerate(expected):
        raw = min(30.0, 0.5 * 2.0 ** n)
        assert raw <= delay <= raw * 1.1
    # Each crashed attempt recorded the delay slept after it.
    assert [a.delay for a in sup.report.attempts] == expected + [None]
    # The schedule itself is deterministic per seed.
    assert list(itertools.islice(backoff.delays(), 4)) == expected
    other = BackoffPolicy(base=0.5, multiplier=2.0, max_delay=30.0,
                          jitter=0.1, seed=43, max_restarts=10,
                          healthy_seconds=100.0)
    assert list(itertools.islice(other.delays(), 4)) != expected


def test_signal_death_counts_as_crash():
    # subprocess reports a SIGKILLed child as -9.
    backoff = BackoffPolicy(healthy_seconds=100.0)
    rc, sup, _, commands = run_script([(-9, 0.5), (0, 1.0)],
                                      backoff=backoff)
    assert rc == 0
    assert [a.returncode for a in sup.report.attempts] == [-9, 0]
    assert len(commands) == 2


def test_gives_up_after_max_consecutive_crashes():
    backoff = BackoffPolicy(base=0.0, max_delay=0.0, jitter=0.0,
                            max_restarts=2, healthy_seconds=100.0)
    rc, sup, sleeps, _ = run_script([(1, 0.1)] * 3, backoff=backoff)
    assert rc == EXIT_GIVE_UP
    assert sup.report.gave_up
    assert sup.report.final_returncode == EXIT_GIVE_UP
    assert len(sup.report.attempts) == 3   # max_restarts + 1 lifetimes
    assert len(sleeps) == 2                # no sleep after the last crash


def test_healthy_uptime_resets_the_crash_budget():
    backoff = BackoffPolicy(base=0.0, max_delay=0.0, jitter=0.0,
                            max_restarts=2, healthy_seconds=10.0)
    # Crash, crash, healthy crash (budget resets), crash, crash -> only
    # then does the consecutive count exceed max_restarts.
    script = [(1, 0.1), (1, 0.1), (1, 20.0), (1, 0.1), (1, 0.1)]
    rc, sup, _, _ = run_script(script, backoff=backoff)
    assert rc == EXIT_GIVE_UP
    assert len(sup.report.attempts) == 5
    # Without the reset, the same script gives up two lifetimes sooner.
    short = BackoffPolicy(base=0.0, max_delay=0.0, jitter=0.0,
                          max_restarts=2, healthy_seconds=100.0)
    rc2, sup2, _, _ = run_script(script, backoff=short)
    assert rc2 == EXIT_GIVE_UP
    assert len(sup2.report.attempts) == 3


def test_resume_args_appended_once_checkpoint_exists():
    backoff = BackoffPolicy(base=0.0, max_delay=0.0, jitter=0.0,
                            max_restarts=10, healthy_seconds=100.0)
    have_checkpoint = [False]

    def on_spawn(count):
        # The first incarnation writes a checkpoint before crashing.
        have_checkpoint[0] = True

    rc, sup, _, commands = run_script(
        [(1, 0.1), (1, 0.1), (0, 1.0)], backoff=backoff,
        should_resume=lambda: have_checkpoint[0], on_spawn=on_spawn)
    assert rc == 0
    assert commands[0] == ["serve"]
    # Appended exactly once, never duplicated on later restarts.
    assert commands[1] == ["serve", "--resume"]
    assert commands[2] == ["serve", "--resume"]
    assert [a.resumed for a in sup.report.attempts] == [False, True, True]


def test_no_resume_without_predicate_or_checkpoint():
    backoff = BackoffPolicy(base=0.0, max_delay=0.0, jitter=0.0,
                            max_restarts=10, healthy_seconds=100.0)
    rc, _, _, commands = run_script([(1, 0.1), (0, 1.0)], backoff=backoff)
    assert commands == [["serve"], ["serve"]]
    rc, _, _, commands = run_script([(1, 0.1), (0, 1.0)], backoff=backoff,
                                    should_resume=lambda: False)
    assert commands == [["serve"], ["serve"]]


def test_backoff_policy_delay_generator_caps_at_max():
    policy = BackoffPolicy(base=1.0, multiplier=10.0, max_delay=5.0,
                           jitter=0.0, seed=1)
    delays = list(itertools.islice(policy.delays(), 5))
    assert delays == [1.0, 5.0, 5.0, 5.0, 5.0]


def test_non_retryable_is_configurable():
    clock = [0.0]

    class Child:
        def wait(self):
            return 7

    supervisor = Supervisor(["serve"], non_retryable=(7,),
                            spawn=lambda cmd: Child(),
                            sleep=lambda s: None,
                            clock=lambda: clock[0],
                            log=lambda line: None)
    assert supervisor.run() == 7
    assert len(supervisor.report.attempts) == 1
