"""Tests for the virtual file system."""

from repro.vfs import DAY_SECONDS, FileMeta, VirtualFileSystem

from conftest import NOW, make_fs


def test_empty_fs():
    fs = VirtualFileSystem()
    assert fs.total_bytes == 0
    assert fs.file_count == 0
    assert fs.uids() == []
    assert fs.utilization() == 0.0


def test_add_and_stat():
    fs = make_fs([("/s/u1/a", 1, 100, 5)])
    assert fs.file_count == 1
    assert fs.total_bytes == 100
    meta = fs.stat("/s/u1/a")
    assert meta is not None and meta.uid == 1 and meta.size == 100
    assert "/s/u1/a" in fs


def test_add_replace_updates_accounting():
    fs = VirtualFileSystem()
    fs.add_file("/f", FileMeta(100, NOW, NOW, NOW, 1))
    fs.add_file("/f", FileMeta(250, NOW, NOW, NOW, 2))
    assert fs.total_bytes == 250
    assert fs.file_count == 1
    assert fs.user_bytes(1) == 0
    assert fs.user_bytes(2) == 250


def test_remove_file():
    fs = make_fs([("/s/a", 1, 100, 0), ("/s/b", 1, 50, 0)])
    meta = fs.remove_file("/s/a")
    assert meta is not None and meta.size == 100
    assert fs.total_bytes == 50
    assert fs.file_count == 1
    assert fs.remove_file("/s/a") is None


def test_touch_hit_and_miss():
    fs = make_fs([("/s/a", 1, 100, 30)])
    assert fs.touch("/s/a", NOW) is True
    assert fs.stat("/s/a").atime == NOW
    assert fs.touch("/s/zzz", NOW) is False


def test_per_user_accounting():
    fs = make_fs([("/s/u1/a", 1, 100, 0), ("/s/u1/b", 1, 60, 0),
                  ("/s/u2/c", 2, 40, 0)])
    assert fs.user_bytes(1) == 160
    assert fs.user_file_count(1) == 2
    assert fs.user_bytes(2) == 40
    assert fs.user_bytes(99) == 0
    assert sorted(fs.uids()) == [1, 2]


def test_uids_drop_emptied_users():
    fs = make_fs([("/s/u1/a", 1, 100, 0), ("/s/u2/b", 2, 50, 0)])
    fs.remove_file("/s/u1/a")
    assert fs.uids() == [2]


def test_iter_user_files_sorted():
    fs = make_fs([("/s/u1/b", 1, 1, 0), ("/s/u1/a", 1, 1, 0),
                  ("/s/u2/c", 2, 1, 0)])
    assert [p for p, _ in fs.iter_user_files(1)] == ["/s/u1/a", "/s/u1/b"]
    assert list(fs.iter_user_files(42)) == []


def test_iter_files_total():
    entries = [(f"/s/u/f{i}", 1, 10, 0) for i in range(5)]
    fs = make_fs(entries)
    assert len(list(fs.iter_files())) == 5


def test_capacity_and_utilization():
    fs = make_fs([("/s/a", 1, 600, 0)], capacity=1000)
    assert fs.utilization() == 0.6
    fs.remove_file("/s/a")
    assert fs.utilization() == 0.0


def test_freeze_capacity():
    fs = make_fs([("/s/a", 1, 100, 0)], capacity=0)
    fs.freeze_capacity()
    assert fs.capacity_bytes == 100
    assert fs.utilization() == 1.0


def test_replicate_independent():
    fs = make_fs([("/s/a", 1, 100, 10)])
    clone = fs.replicate()
    clone.remove_file("/s/a")
    assert "/s/a" in fs
    assert clone.file_count == 0
    assert clone.capacity_bytes == fs.capacity_bytes


def test_replicate_deep_copies_meta():
    fs = make_fs([("/s/a", 1, 100, 10)])
    clone = fs.replicate()
    clone.touch("/s/a", NOW + DAY_SECONDS)
    assert fs.stat("/s/a").atime != clone.stat("/s/a").atime


def test_prefix_queries():
    fs = make_fs([("/s/u1/p/a", 1, 1, 0), ("/s/u1/p/b", 1, 1, 0),
                  ("/s/u2/q/c", 2, 1, 0)])
    assert fs.count_prefix("/s/u1") == 2
    assert len(list(fs.iter_prefix("/s/u2"))) == 1


def test_user_bytes_incremental_exactness():
    fs = make_fs([("/s/u1/a", 1, 100, 0), ("/s/u1/b", 1, 250, 0),
                  ("/s/u2/c", 2, 70, 0)])
    assert fs.user_bytes(1) == 350
    assert fs.user_bytes(2) == 70
    assert fs.user_bytes(99) == 0

    # Replacement (same path, new size, even a new owner) stays exact.
    fs.add_file("/s/u1/a", FileMeta(size=40, atime=NOW, mtime=NOW,
                                    ctime=NOW, uid=1))
    assert fs.user_bytes(1) == 290
    fs.add_file("/s/u1/b", FileMeta(size=10, atime=NOW, mtime=NOW,
                                    ctime=NOW, uid=2))
    assert fs.user_bytes(1) == 40
    assert fs.user_bytes(2) == 80

    # Purges drain the counter down to zero, not below.
    fs.remove_file("/s/u1/a")
    assert fs.user_bytes(1) == 0
    fs.remove_file("/s/u1/b")
    fs.remove_file("/s/u2/c")
    assert fs.user_bytes(2) == 0
    assert fs.total_bytes == 0

    # The counter always agrees with a from-scratch re-sum.
    for uid in (1, 2, 99):
        expected = sum(meta.size for _, meta in fs.iter_user_files(uid))
        assert fs.user_bytes(uid) == expected
