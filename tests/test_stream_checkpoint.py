"""Checkpoint container: atomicity, exact round-trips, format guards."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.classification import UserClass
from repro.core.report import GroupTally, RetentionReport
from repro.emulation.metrics import DailyMetrics
from repro.stream import atomic_write_npz, load_checkpoint
from repro.stream.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointCorruption,
    CheckpointManager,
    activeness_from_arrays,
    activeness_to_arrays,
    metrics_from_arrays,
    metrics_to_arrays,
    reports_from_jsonable,
    reports_to_jsonable,
    verify_checkpoint,
)


def manifest(**extra):
    base = {"format": CHECKPOINT_FORMAT, "cursor": 42}
    base.update(extra)
    return base


def test_npz_round_trip(tmp_path):
    path = str(tmp_path / "ck.npz")
    arrays = {
        "ints": np.arange(5, dtype=np.int64),
        "floats": np.array([0.1, -np.inf, 3.5e300]),
        "bools": np.array([True, False, True]),
        "paths": np.asarray(["/proj/α β/v1.2/out", "/proj/x"],
                            dtype=np.str_),
    }
    atomic_write_npz(path, manifest(lifetime=90.0, name="π"), arrays)
    loaded_manifest, loaded = load_checkpoint(path)
    digests = loaded_manifest.pop("array_digests")
    assert set(digests) == set(arrays)
    assert loaded_manifest == manifest(lifetime=90.0, name="π")
    for key, value in arrays.items():
        assert np.array_equal(loaded[key], value), key
    assert not os.path.exists(f"{path}.tmp")


def test_atomic_write_preserves_old_on_failure(tmp_path):
    path = str(tmp_path / "ck.npz")
    atomic_write_npz(path, manifest(generation=1), {"a": np.arange(3)})

    class Unserializable:
        pass

    with pytest.raises(TypeError):
        # json.dumps fails mid-write; the destination must be untouched.
        atomic_write_npz(path, manifest(bad=Unserializable()),
                         {"a": np.arange(4)})
    loaded_manifest, arrays = load_checkpoint(path)
    assert loaded_manifest["generation"] == 1
    assert np.array_equal(arrays["a"], np.arange(3))


def test_write_rejects_reserved_array_name(tmp_path):
    with pytest.raises(ValueError):
        atomic_write_npz(str(tmp_path / "ck.npz"), manifest(),
                         {"__manifest__": np.arange(3)})


def test_load_rejects_foreign_npz(tmp_path):
    path = str(tmp_path / "other.npz")
    np.savez(path, a=np.arange(3))
    with pytest.raises(ValueError, match="manifest"):
        load_checkpoint(path)


def test_load_rejects_unknown_format(tmp_path):
    path = str(tmp_path / "ck.npz")
    atomic_write_npz(path, {"format": "something-else/9"}, {})
    with pytest.raises(ValueError, match="format"):
        load_checkpoint(path)


def test_reports_round_trip_exactly():
    report = RetentionReport(policy="activedr", t_c=1_467_331_200,
                             lifetime_days=90.0,
                             target_bytes=1234567890123,
                             purged_bytes_total=987654321,
                             target_met=True, passes_used=2)
    report.groups[UserClass.BOTH_ACTIVE] = GroupTally(
        purged_files=3, purged_bytes=100, retained_files=7,
        retained_bytes=900, users_purged={9, 2}, users_scanned={2, 9, 11})
    report.groups[UserClass.BOTH_INACTIVE] = GroupTally()
    encoded = reports_to_jsonable([report])
    # Must survive an actual JSON round-trip (it lives in the manifest).
    decoded = reports_from_jsonable(json.loads(json.dumps(encoded)))
    assert decoded == [report]


def test_metrics_round_trip_exactly():
    metrics = DailyMetrics(4)
    metrics.record_access(0)
    metrics.record_access(1)
    metrics.record_miss(1, UserClass.BOTH_INACTIVE)
    metrics.record_access(3)
    metrics.record_miss(3, UserClass.OPERATION_ACTIVE_ONLY)
    restored = metrics_from_arrays(metrics_to_arrays(metrics))
    assert np.array_equal(restored.accesses, metrics.accesses)
    assert np.array_equal(restored.misses, metrics.misses)
    for cls in UserClass:
        assert np.array_equal(restored.group_misses[cls],
                              metrics.group_misses[cls])


def test_activeness_arrays_round_trip(tiny_dataset, tmp_path):
    from repro.core.incremental import build_activity_store

    store = build_activity_store(tiny_dataset.jobs,
                                 tiny_dataset.publications)
    state = store.snapshot_state()
    table, arrays = activeness_to_arrays(state)
    # Through an actual npz file, like the service does.
    path = str(tmp_path / "ck.npz")
    atomic_write_npz(path, manifest(activity_types=table), arrays)
    loaded_manifest, loaded_arrays = load_checkpoint(path)
    restored = activeness_from_arrays(loaded_manifest["activity_types"],
                                      loaded_arrays)
    assert list(restored) == list(state)  # type identity and order
    for atype in state:
        for mine, theirs in zip(state[atype], restored[atype]):
            assert np.array_equal(mine, theirs)


def _tamper_array(path, name):
    """Rewrite the npz with one array modified but the old digests."""
    manifest, arrays = load_checkpoint(path, verify=False)
    arrays[name] = np.asarray(arrays[name]) + 1
    payload = dict(arrays)
    payload["__manifest__"] = np.asarray(json.dumps(manifest))
    np.savez_compressed(path, **payload)


def test_load_detects_tampered_array(tmp_path):
    path = str(tmp_path / "ck.npz")
    atomic_write_npz(path, manifest(), {"a": np.arange(4),
                                        "b": np.ones(3)})
    _tamper_array(path, "b")
    with pytest.raises(CheckpointCorruption) as exc:
        verify_checkpoint(path)
    assert exc.value.array == "b"
    assert "digest mismatch" in exc.value.reason
    assert "sha256" in exc.value.reason  # names the digests, not a trace
    # Verification is opt-out for forensics.
    loaded_manifest, arrays = load_checkpoint(path, verify=False)
    assert np.array_equal(arrays["b"], np.ones(3) + 1)


def test_load_detects_truncated_npz(tmp_path):
    from repro.faults import corrupt_file
    path = str(tmp_path / "ck.npz")
    atomic_write_npz(path, manifest(), {"a": np.arange(100)})
    corrupt_file(path, "truncate")
    with pytest.raises(CheckpointCorruption) as exc:
        load_checkpoint(path)
    assert exc.value.path == path


def test_load_detects_missing_array(tmp_path):
    path = str(tmp_path / "ck.npz")
    atomic_write_npz(path, manifest(), {"a": np.arange(4),
                                        "b": np.ones(3)})
    loaded_manifest, arrays = load_checkpoint(path, verify=False)
    payload = {"a": arrays["a"],
               "__manifest__": np.asarray(json.dumps(loaded_manifest))}
    np.savez_compressed(path, **payload)
    with pytest.raises(CheckpointCorruption) as exc:
        load_checkpoint(path)
    assert exc.value.array == "b"
    assert "missing" in exc.value.reason


def test_manager_keeps_bounded_chain(tmp_path):
    mgr = CheckpointManager(str(tmp_path / "ck"), retain=3)
    assert mgr.latest() is None
    with pytest.raises(FileNotFoundError):
        mgr.load()
    saved = [mgr.save(manifest(cursor=10 * i), {"a": np.arange(i + 2)})
             for i in range(5)]
    assert len(set(saved)) == 5  # every save is a distinct chain link
    assert mgr.paths() == saved[-3:]  # GC keeps the newest `retain`
    assert mgr.latest() == saved[-1]
    loaded_manifest, arrays = mgr.load()
    assert loaded_manifest["cursor"] == 40
    assert np.array_equal(arrays["a"], np.arange(6))
    assert sorted(os.listdir(mgr.directory)) == [
        os.path.basename(p) for p in saved[-3:]]


def test_manager_rolls_back_past_corrupt_head(tmp_path):
    from repro.faults import corrupt_file
    mgr = CheckpointManager(str(tmp_path / "ck"), retain=3)
    for i in range(3):
        mgr.save(manifest(cursor=i), {"a": np.arange(i + 2)})
    corrupt_file(mgr.latest(), "truncate")
    newest, failures = mgr.latest_verified()
    assert newest == mgr.paths()[-2]
    assert len(failures) == 1 and failures[0][0] == mgr.paths()[-1]
    loaded_manifest, _arrays = mgr.load()
    assert loaded_manifest["cursor"] == 1  # rolled back one link


def test_manager_raises_when_nothing_verifies(tmp_path):
    from repro.faults import corrupt_file
    mgr = CheckpointManager(str(tmp_path / "ck"), retain=2)
    for i in range(2):
        mgr.save(manifest(cursor=i), {"a": np.arange(9)})
    for path in mgr.paths():
        corrupt_file(path, "truncate")
    with pytest.raises(CheckpointCorruption, match="no checkpoint"):
        mgr.load()
    with pytest.raises(ValueError):
        CheckpointManager(str(tmp_path / "x"), retain=0)
