"""Tests for the fixed-lifetime baseline policy."""

import pytest

from repro.core import (
    ExemptionList,
    FixedLifetimePolicy,
    RetentionConfig,
    UserActiveness,
    UserClass,
)

from conftest import NOW, make_fs


def _cfg(lifetime=90.0, target=0.5):
    return RetentionConfig(lifetime_days=lifetime,
                           purge_target_utilization=target)


def test_purges_only_stale_files():
    fs = make_fs([("/s/u1/old", 1, 100, 91),
                  ("/s/u1/fresh", 1, 100, 89)])
    report = FixedLifetimePolicy(_cfg()).run(fs, NOW)
    assert "/s/u1/old" not in fs
    assert "/s/u1/fresh" in fs
    assert report.purged_files_total == 1
    assert report.retained_files_total == 1


def test_staleness_boundary_is_strict():
    # Purge iff age > lifetime: exactly-90-day files are retained.
    fs = make_fs([("/s/a", 1, 10, 90.0)])
    FixedLifetimePolicy(_cfg(90)).run(fs, NOW)
    assert "/s/a" in fs


def test_lifetime_sweep_monotone():
    ages = [5, 20, 45, 70, 100, 200]
    purged = []
    for lifetime in (7, 30, 60, 90):
        fs = make_fs([(f"/s/f{i}", 1, 10, age) for i, age in enumerate(ages)])
        rep = FixedLifetimePolicy(_cfg(lifetime)).run(fs, NOW)
        purged.append(rep.purged_files_total)
    assert purged == sorted(purged, reverse=True)
    assert purged == [5, 4, 3, 2]


def test_exempt_files_survive():
    fs = make_fs([("/s/u1/old", 1, 100, 365),
                  ("/s/u1/old2", 1, 100, 365)])
    ex = ExemptionList(paths=["/s/u1/old"])
    report = FixedLifetimePolicy(_cfg()).run(fs, NOW, exemptions=ex)
    assert "/s/u1/old" in fs
    assert "/s/u1/old2" not in fs
    assert report.purged_files_total == 1


def test_no_target_purges_everything_stale():
    entries = [(f"/s/f{i}", 1, 100, 200) for i in range(10)]
    fs = make_fs(entries)
    report = FixedLifetimePolicy(_cfg()).run(fs, NOW)
    assert fs.file_count == 0
    assert report.target_met is True
    assert report.target_bytes == 0


def test_enforced_target_stops_early():
    # 10 stale files x 100 B, capacity 1000, target 50 % -> purge 500 B.
    entries = [(f"/s/f{i}", 1, 100, 200) for i in range(10)]
    fs = make_fs(entries)
    pol = FixedLifetimePolicy(_cfg(), enforce_target=True)
    report = pol.run(fs, NOW)
    assert report.purged_bytes_total == 500
    assert fs.file_count == 5
    assert report.target_met is True


def test_enforced_target_can_fall_short():
    # Only 100 B stale but 900 B must go -> FLT undershoots and reports it.
    entries = [("/s/stale", 1, 100, 200)] + [
        (f"/s/fresh{i}", 1, 100, 1) for i in range(9)]
    fs = make_fs(entries, capacity=1000)
    fs_total = fs.total_bytes
    pol = FixedLifetimePolicy(_cfg(target=0.05), enforce_target=True)
    report = pol.run(fs, NOW)
    assert report.purged_bytes_total == 100
    assert report.target_met is False
    assert fs.total_bytes == fs_total - 100


def test_scan_order_is_path_order():
    # With a target of one file, the lexicographically first stale path goes.
    entries = [("/s/b", 1, 100, 200), ("/s/a", 2, 100, 200),
               ("/s/c", 3, 100, 200), ("/s/fresh", 4, 700, 1)]
    fs = make_fs(entries)
    pol = FixedLifetimePolicy(_cfg(target=0.9), enforce_target=True)
    pol.run(fs, NOW)
    assert "/s/a" not in fs
    assert "/s/b" in fs and "/s/c" in fs


def test_groups_attributed_from_activeness():
    fs = make_fs([("/s/u1/f", 1, 100, 200), ("/s/u2/f", 2, 100, 200)])
    activeness = {1: UserActiveness(1, log_op=1.0, log_oc=1.0,
                                    has_op=True, has_oc=True)}
    report = FixedLifetimePolicy(_cfg()).run(fs, NOW, activeness=activeness)
    assert report.purged_bytes(UserClass.BOTH_ACTIVE) == 100
    assert report.purged_bytes(UserClass.BOTH_INACTIVE) == 100


def test_without_activeness_everything_is_both_inactive():
    fs = make_fs([("/s/u1/f", 1, 100, 200)])
    report = FixedLifetimePolicy(_cfg()).run(fs, NOW)
    assert report.purged_bytes(UserClass.BOTH_INACTIVE) == 100


def test_flt_ignores_user_activeness_for_decisions():
    """FLT purges an active user's stale file -- the paper's core critique."""
    fs = make_fs([("/s/vip/f", 1, 100, 120)])
    activeness = {1: UserActiveness(1, log_op=50.0, log_oc=50.0,
                                    has_op=True, has_oc=True)}
    FixedLifetimePolicy(_cfg()).run(fs, NOW, activeness=activeness)
    assert "/s/vip/f" not in fs


def test_report_metadata():
    fs = make_fs([("/s/a", 1, 10, 5)])
    report = FixedLifetimePolicy(_cfg(30)).run(fs, NOW)
    assert report.policy == "FLT"
    assert report.t_c == NOW
    assert report.lifetime_days == 30
