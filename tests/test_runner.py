"""Tests for the FLT-vs-ActiveDR comparison runner."""

import numpy as np
import pytest

from repro.core import RetentionConfig, UserClass
from repro.emulation import (
    ACTIVEDR,
    FLT,
    ComparisonResult,
    ComparisonRunner,
    DailyMetrics,
    EmulationResult,
    run_lifetime_sweep,
)


def _result_with_misses(policy, per_day):
    metrics = DailyMetrics(len(per_day))
    for day, n in enumerate(per_day):
        for _ in range(n):
            metrics.record_access(day)
            metrics.record_miss(day, UserClass.BOTH_INACTIVE)
    return EmulationResult(policy=policy, lifetime_days=90, metrics=metrics)


def test_comparison_result_reduction():
    cr = ComparisonResult(90.0)
    cr.results[FLT] = _result_with_misses(FLT, [10, 10])
    cr.results[ACTIVEDR] = _result_with_misses(ACTIVEDR, [5, 10])
    assert cr.total_misses(FLT) == 20
    assert cr.miss_reduction() == pytest.approx(0.25)
    assert cr.group_miss_reduction(UserClass.BOTH_INACTIVE) == pytest.approx(0.25)
    assert cr.group_miss_reduction(UserClass.BOTH_ACTIVE) == 0.0


def test_comparison_result_zero_flt_misses():
    cr = ComparisonResult(90.0)
    cr.results[FLT] = _result_with_misses(FLT, [0])
    cr.results[ACTIVEDR] = _result_with_misses(ACTIVEDR, [0])
    assert cr.miss_reduction() == 0.0


def test_daily_reduction_ratios_skip_zero_flt_days():
    cr = ComparisonResult(90.0)
    cr.results[FLT] = _result_with_misses(FLT, [10, 0, 4])
    cr.results[ACTIVEDR] = _result_with_misses(ACTIVEDR, [5, 3, 4])
    ratios = cr.daily_group_reduction_ratios(UserClass.BOTH_INACTIVE)
    np.testing.assert_allclose(ratios, [0.5, 0.0])


def test_runner_end_to_end(tiny_dataset):
    runner = ComparisonRunner(tiny_dataset)
    result = runner.run()
    assert set(result.results) == {FLT, ACTIVEDR}
    for policy in (FLT, ACTIVEDR):
        r = result[policy]
        assert r.metrics.total_accesses > 0
        assert len(r.reports) == 52
    # Identical traces -> identical access counts.
    assert (result[FLT].metrics.total_accesses
            == result[ACTIVEDR].metrics.total_accesses)


def test_runner_policies_see_identical_initial_state(tiny_dataset):
    fs1 = tiny_dataset.fresh_filesystem()
    fs2 = tiny_dataset.fresh_filesystem()
    assert fs1.total_bytes == fs2.total_bytes
    assert fs1.file_count == fs2.file_count
    fs1.remove_file(next(iter(fs1.iter_files()))[0])
    assert fs1.file_count == fs2.file_count - 1


def test_lifetime_sweep_structure(tiny_dataset):
    sweep = run_lifetime_sweep(tiny_dataset, lifetimes=(30.0, 90.0))
    assert set(sweep) == {30.0, 90.0}
    for lifetime, cr in sweep.items():
        assert cr.lifetime_days == lifetime
        final = cr[ACTIVEDR].final_report
        assert final is not None
        assert final.lifetime_days == lifetime
        # Activeness period follows the lifetime, as in the paper's sweep.
        assert cr[ACTIVEDR].reports[0].policy == "ActiveDR"


def test_sweep_respects_base_config(tiny_dataset):
    base = RetentionConfig(purge_target_utilization=0.8)
    sweep = run_lifetime_sweep(tiny_dataset, lifetimes=(60.0,),
                               base_config=base)
    final = sweep[60.0][ACTIVEDR].final_report
    assert final is not None


def test_runner_with_exemptions(tiny_dataset):
    """Reserved directories survive the full paired replay."""
    from repro.core import ExemptionList
    some_user_dir = next(iter(tiny_dataset.filesystem.iter_files()))[0]
    prefix = "/".join(some_user_dir.split("/")[:4])  # /lustre/scratch/<user>
    runner = ComparisonRunner(tiny_dataset,
                              exemptions=ExemptionList(
                                  directories=[prefix]))
    result = runner.run()
    for policy in (FLT, ACTIVEDR):
        # The reserved user's snapshot files all survive (creates under the
        # prefix may add more).
        final = result[policy]
        assert final is not None
    # cross-check on a fresh replay FS is indirect; the guarantee itself is
    # unit-tested per policy -- here we assert the wiring does not throw and
    # the comparison still holds basic invariants.
    assert result[FLT].metrics.total_accesses == \
        result[ACTIVEDR].metrics.total_accesses


def test_lifetime_config_preserves_every_field():
    """Regression: the sweep derivation used to rebuild ActivenessParams
    field by field and silently dropped ``max_periods``.  Every field of
    the base config -- including nested activeness params -- must carry
    over, with only the lifetime and the period length swapped."""
    from dataclasses import fields
    from repro.core import ActivenessParams
    from repro.emulation.runner import _lifetime_config

    base = RetentionConfig(
        lifetime_days=90.0,
        purge_trigger_days=3,
        purge_target_utilization=0.7,
        retrospective_passes=2,
        rank_decay=0.35,
        activeness=ActivenessParams(period_days=14.0, empty_period="epsilon",
                                    epsilon=1e-6, max_periods=8),
        zero_rank_as_initial=False,
    )
    derived = _lifetime_config(base, 30.0)

    assert derived.lifetime_days == 30.0
    assert derived.activeness.period_days == 30.0
    for f in fields(RetentionConfig):
        if f.name in ("lifetime_days", "activeness"):
            continue
        assert getattr(derived, f.name) == getattr(base, f.name), f.name
    for f in fields(ActivenessParams):
        if f.name == "period_days":
            continue
        assert (getattr(derived.activeness, f.name)
                == getattr(base.activeness, f.name)), f.name
    # The pre-fix symptom, pinned explicitly:
    assert derived.activeness.max_periods == 8


def test_sweep_forwards_flt_enforce_target(tiny_dataset):
    sweep = run_lifetime_sweep(tiny_dataset, lifetimes=(90.0,),
                               flt_enforce_target=True)
    flt_reports = sweep[90.0][FLT].reports
    # Target-enforced FLT records a target on runs where usage exceeds it.
    assert any(r.target_bytes >= 0 for r in flt_reports)
    assert all(r.policy == "FLT" for r in flt_reports)
