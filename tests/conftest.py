"""Shared fixtures: tiny deterministic datasets and file-system builders."""

from __future__ import annotations

import pytest

from repro.core import ActivenessParams, RetentionConfig
from repro.synth import TitanConfig, generate_dataset
from repro.vfs import DAY_SECONDS, FileMeta, VirtualFileSystem

#: A fixed "now" for unit tests: 2016-07-01 UTC.
NOW = 1_467_331_200


def make_fs(entries, capacity=None):
    """Build a VirtualFileSystem from (path, uid, size, age_days) tuples."""
    fs = VirtualFileSystem()
    for path, uid, size, age_days in entries:
        atime = NOW - int(age_days * DAY_SECONDS)
        fs.add_file(path, FileMeta(size=size, atime=atime, mtime=atime,
                                   ctime=atime - DAY_SECONDS, uid=uid))
    if capacity is None:
        fs.freeze_capacity()
    else:
        fs.capacity_bytes = capacity
    return fs


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small but structurally complete synthetic Titan dataset."""
    return generate_dataset(TitanConfig(n_users=60, seed=11))


@pytest.fixture()
def default_config():
    return RetentionConfig()


@pytest.fixture()
def weekly_params():
    return ActivenessParams(period_days=7)
