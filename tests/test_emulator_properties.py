"""Property-based invariants of the replay emulator.

Random miniature workloads, checked against what any correct replay must
satisfy: miss counts bounded by access counts, access counts independent
of the policy, determinism, and miss-freeness when nothing can be purged.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ActiveDRPolicy,
    ActivenessParams,
    FixedLifetimePolicy,
    RetentionConfig,
)
from repro.emulation import Emulator
from repro.traces import AppAccessRecord, JobRecord
from repro.vfs import DAY_SECONDS, FileMeta, VirtualFileSystem

START = 1_460_000_000 - (1_460_000_000 % DAY_SECONDS)
N_DAYS = 40
END = START + N_DAYS * DAY_SECONDS


@st.composite
def _workload(draw):
    """A tiny random workload: files, accesses, jobs over a 40-day window."""
    n_files = draw(st.integers(1, 10))
    fs = VirtualFileSystem()
    paths = []
    for i in range(n_files):
        uid = draw(st.integers(1, 3))
        age = draw(st.integers(0, 200))
        atime = START - age * DAY_SECONDS
        path = f"/s/u{uid}/f{i}"
        fs.add_file(path, FileMeta(100, atime, atime, atime, uid))
        paths.append(path)
    fs.freeze_capacity()

    n_acc = draw(st.integers(0, 40))
    accesses = []
    for _ in range(n_acc):
        ts = draw(st.integers(START, END - 1))
        uid = draw(st.integers(1, 3))
        op = draw(st.sampled_from(["access", "access", "access", "create",
                                   "touch"]))
        if op == "create":
            path = f"/s/u{uid}/new{draw(st.integers(0, 5))}.out"
        else:
            path = draw(st.sampled_from(paths))
        accesses.append(AppAccessRecord(ts, uid, path, op))
    accesses.sort(key=lambda r: r.ts)

    jobs = []
    for j in range(draw(st.integers(0, 6))):
        submit = draw(st.integers(START - 100 * DAY_SECONDS, END - 1))
        jobs.append(JobRecord(j, draw(st.integers(1, 3)), submit,
                              submit + 10, submit + 3_610,
                              draw(st.integers(1, 8))))
    jobs.sort(key=lambda j: j.submit_ts)
    return fs, accesses, jobs


def _run(policy_cls, fs, accesses, jobs, **policy_kwargs):
    config = RetentionConfig(lifetime_days=30,
                             activeness=ActivenessParams(period_days=7))
    policy = policy_cls(config, **policy_kwargs)
    emulator = Emulator(policy, config.activeness)
    return emulator.run(fs, accesses, jobs, [], START, END,
                        known_uids=[1, 2, 3])


@settings(max_examples=25, deadline=None)
@given(_workload())
def test_misses_bounded_and_accesses_policy_independent(workload):
    fs, accesses, jobs = workload
    flt = _run(FixedLifetimePolicy, fs.replicate(), accesses, jobs)
    adr = _run(ActiveDRPolicy, fs.replicate(), accesses, jobs)
    for result in (flt, adr):
        assert result.metrics.total_misses <= result.metrics.total_accesses
        expected_accesses = sum(1 for r in accesses if r.op == "access")
        assert result.metrics.total_accesses == expected_accesses
        assert (result.metrics.misses.sum()
                == sum(g.sum() for g in result.metrics.group_misses.values()))
    assert flt.metrics.total_accesses == adr.metrics.total_accesses


@settings(max_examples=15, deadline=None)
@given(_workload())
def test_replay_deterministic(workload):
    fs, accesses, jobs = workload
    a = _run(ActiveDRPolicy, fs.replicate(), accesses, jobs)
    b = _run(ActiveDRPolicy, fs.replicate(), accesses, jobs)
    assert a.metrics.total_misses == b.metrics.total_misses
    assert a.final_total_bytes == b.final_total_bytes
    assert [r.purged_bytes_total for r in a.reports] == \
        [r.purged_bytes_total for r in b.reports]


@settings(max_examples=15, deadline=None)
@given(_workload())
def test_fresh_files_never_miss_with_huge_lifetime(workload):
    fs, accesses, jobs = workload
    config = RetentionConfig(lifetime_days=100_000)
    policy = FixedLifetimePolicy(config)
    emulator = Emulator(policy, config.activeness)
    result = emulator.run(fs.replicate(), accesses, jobs, [], START, END,
                          known_uids=[1, 2, 3])
    # Nothing is ever purged, so only never-existing paths can miss --
    # and our accesses only name snapshot paths or created paths.
    created = {r.path for r in accesses if r.op == "create"}
    possible_miss = sum(
        1 for r in accesses
        if r.op == "access" and r.path in created)  # access-before-create
    assert result.metrics.total_misses <= possible_miss
