"""Tests for the dataset calibration statistics."""

import pytest

from repro.synth import CalibrationStats, calibrate, render_calibration


@pytest.fixture(scope="module")
def stats(tiny_dataset):
    return calibrate(tiny_dataset)


def test_population_accounting(tiny_dataset, stats):
    assert stats.n_users == len(tiny_dataset.users)
    assert stats.n_files == tiny_dataset.filesystem.file_count
    assert sum(stats.users_by_archetype.values()) == stats.n_users
    assert (sum(stats.bytes_by_archetype.values())
            == tiny_dataset.filesystem.total_bytes)


def test_stale_fraction_in_unit_interval(stats):
    assert 0.0 <= stats.stale_byte_fraction <= 1.0
    # The generator's old tail guarantees some dead mass at 90 days.
    assert stats.stale_byte_fraction > 0.1


def test_growth_fraction(stats):
    assert stats.created_bytes > 0
    assert 0.0 < stats.growth_fraction < 1.0  # modest yearly growth


def test_job_quantiles_monotone(stats):
    q = stats.job_count_quantiles
    assert list(q) == sorted(q)
    assert q[-1] > 0


def test_op_counts_cover_trace(tiny_dataset, stats):
    assert sum(stats.op_counts.values()) == len(tiny_dataset.accesses)
    assert "access" in stats.op_counts


def test_render(stats):
    text = render_calibration(stats)
    assert "Population mix" in text
    assert "dead mass" in text
    assert "sporadic" in text or "dormant" in text


def test_growth_fraction_zero_capacity():
    stats = CalibrationStats(n_users=0, n_files=0, capacity_bytes=0)
    assert stats.growth_fraction == 0.0
