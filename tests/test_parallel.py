"""Tests for the parallel substrate: communicators, partitioners, scans."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    ProbeLog,
    RankScanResult,
    SerialComm,
    Timer,
    block_partition,
    block_ranges,
    cyclic_partition,
    parallel_shard_scan,
    rss_bytes,
    run_spmd,
)


# ---------------------------------------------------------------- partition

def test_block_ranges_even():
    assert block_ranges(6, 3) == [(0, 2), (2, 4), (4, 6)]


def test_block_ranges_remainder_goes_first():
    assert block_ranges(7, 3) == [(0, 3), (3, 5), (5, 7)]


def test_block_ranges_more_parts_than_items():
    ranges = block_ranges(2, 4)
    assert ranges == [(0, 1), (1, 2), (2, 2), (2, 2)]


def test_block_ranges_validation():
    with pytest.raises(ValueError):
        block_ranges(5, 0)
    with pytest.raises(ValueError):
        block_ranges(-1, 2)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 500), st.integers(1, 32))
def test_block_ranges_properties(n, parts):
    ranges = block_ranges(n, parts)
    assert len(ranges) == parts
    assert ranges[0][0] == 0 and ranges[-1][1] == n
    sizes = [hi - lo for lo, hi in ranges]
    assert sum(sizes) == n
    assert max(sizes) - min(sizes) <= 1
    for (a, b), (c, d) in zip(ranges, ranges[1:]):
        assert b == c


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(), max_size=60), st.integers(1, 8))
def test_partitions_preserve_items(items, parts):
    flat_block = [x for part in block_partition(items, parts) for x in part]
    assert flat_block == items
    cyclic = cyclic_partition(items, parts)
    assert sorted(x for part in cyclic for x in part) == sorted(items)


def test_cyclic_partition_deals_round_robin():
    assert cyclic_partition([1, 2, 3, 4, 5], 2) == [[1, 3, 5], [2, 4]]


# ---------------------------------------------------------------- serial comm

def test_serial_comm_collectives():
    comm = SerialComm()
    assert comm.rank == 0 and comm.size == 1
    assert comm.bcast("x") == "x"
    assert comm.scatter(["only"]) == "only"
    assert comm.gather(5) == [5]
    assert comm.allgather(5) == [5]
    assert comm.reduce(5, lambda a, b: a + b) == 5
    assert comm.allreduce(5, lambda a, b: a + b) == 5
    comm.barrier()


def test_serial_scatter_validates():
    with pytest.raises(ValueError):
        SerialComm().scatter([1, 2])


# ---------------------------------------------------------------- SPMD

def _spmd_sum(comm, payload):
    part = comm.scatter(payload if comm.rank == 0 else None)
    total = comm.allreduce(sum(part), lambda a, b: a + b)
    gathered = comm.gather(comm.rank)
    comm.barrier()
    return total, gathered, comm.bcast("hello" if comm.rank == 0 else None)


def test_run_spmd_size_one_uses_serial():
    (result,) = run_spmd(_spmd_sum, 1, [[1, 2, 3]])
    total, gathered, greeting = result
    assert total == 6 and gathered == [0] and greeting == "hello"


def test_run_spmd_multi_rank():
    results = run_spmd(_spmd_sum, 3, [[1], [2, 3], [4, 5, 6]])
    totals = [r[0] for r in results]
    assert totals == [21, 21, 21]  # allreduce agrees everywhere
    assert results[0][1] == [0, 1, 2]  # gather at root
    assert results[1][1] is None
    assert all(r[2] == "hello" for r in results)


def _spmd_fail(comm, payload):
    if comm.rank == payload:
        raise RuntimeError("boom")
    return comm.rank


def test_run_spmd_surfaces_worker_errors():
    with pytest.raises(RuntimeError, match="boom"):
        run_spmd(_spmd_fail, 1, 0)


def test_run_spmd_validates_size():
    with pytest.raises(ValueError):
        run_spmd(_spmd_sum, 0, None)


# ---------------------------------------------------------------- probes

def test_timer_measures():
    with Timer() as t:
        sum(range(10_000))
    assert t.elapsed > 0.0


def test_rss_bytes_positive_on_linux():
    assert rss_bytes() > 0


def test_probe_log_measure():
    log = ProbeLog()
    with log.measure("work"):
        _ = [0] * 1000
    assert log.timings["work"] >= 0.0
    assert "work" in log.memory_mib
    log.record_time("work", 1.0)
    assert log.timings["work"] >= 1.0


# ---------------------------------------------------------------- shard scan

def _line_count(path):
    with open(path) as f:
        return sum(1 for _ in f)


def _make_shards(tmp_path, sizes):
    shards = []
    for i, n in enumerate(sizes):
        p = tmp_path / f"shard{i}.txt"
        p.write_text("x\n" * n)
        shards.append(str(p))
    return shards


def test_parallel_shard_scan_serial(tmp_path):
    shards = _make_shards(tmp_path, [3, 5, 2])
    (result,) = parallel_shard_scan(shards, _line_count, n_ranks=1)
    assert isinstance(result, RankScanResult)
    assert result.values == [3, 5, 2]
    assert len(result.shard_seconds) == 3
    assert result.total_seconds >= 0.0


def test_parallel_shard_scan_multirank(tmp_path):
    shards = _make_shards(tmp_path, [1, 2, 3, 4])
    results = parallel_shard_scan(shards, _line_count, n_ranks=2)
    assert [r.rank for r in results] == [0, 1]
    assert results[0].values == [1, 2]
    assert results[1].values == [3, 4]


def test_parallel_shard_scan_validates():
    with pytest.raises(ValueError):
        parallel_shard_scan([], _line_count, n_ranks=0)
