"""Tests for the purge-exemption reservation list."""

from repro.core import ExemptionList


def test_empty_list_exempts_nothing():
    ex = ExemptionList()
    assert not ex.is_exempt("/any/path")
    assert len(ex) == 0


def test_exact_file_reservation():
    ex = ExemptionList(paths=["/s/u1/keep.h5"])
    assert ex.is_exempt("/s/u1/keep.h5")
    assert "/s/u1/keep.h5" in ex
    assert not ex.is_exempt("/s/u1/other.h5")
    # A file reservation does not cover children.
    assert not ex.is_exempt("/s/u1/keep.h5/sub")


def test_directory_reservation_covers_subtree():
    ex = ExemptionList(directories=["/s/proj/inputs"])
    assert ex.is_exempt("/s/proj/inputs/a.dat")
    assert ex.is_exempt("/s/proj/inputs/deep/b.dat")
    assert ex.is_exempt("/s/proj/inputs")
    assert not ex.is_exempt("/s/proj/outputs/a.dat")


def test_moved_file_loses_reservation():
    # Section 3.4: changing a reserved file's path cancels the contract.
    ex = ExemptionList(paths=["/s/u1/data.h5"])
    assert not ex.is_exempt("/s/u1/renamed.h5")


def test_cancel():
    ex = ExemptionList(paths=["/a"], directories=["/d"])
    assert ex.cancel("/a")
    assert not ex.is_exempt("/a")
    assert ex.cancel("/d")
    assert not ex.is_exempt("/d/x")
    assert not ex.cancel("/never")


def test_iteration():
    ex = ExemptionList(paths=["/a", "/b"], directories=["/d"])
    assert sorted(ex.reserved_files()) == ["/a", "/b"]
    assert list(ex.reserved_directories()) == ["/d"]
    assert len(ex) == 3


def test_from_file(tmp_path):
    listing = tmp_path / "reserved.txt"
    listing.write_text(
        "# comment line\n"
        "\n"
        "/s/u1/keep.h5\n"
        "/s/proj/inputs/\n")
    ex = ExemptionList.from_file(str(listing))
    assert ex.is_exempt("/s/u1/keep.h5")
    assert ex.is_exempt("/s/proj/inputs/x.dat")
    assert not ex.is_exempt("/s/u1/other")
