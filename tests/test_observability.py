"""Observability plane suite: counters, history ring, exposition, dashboard.

The acceptance bar:

1. shared counters are exact under concurrent bumps (the old plain-int
   ``+=`` lost updates);
2. two concurrent ``admin metrics`` pollers during active ingest each
   observe consistent, positive ``events_per_second`` (the old shared
   rate window made interleaved pollers clobber each other);
3. a kill + resume run yields a metrics history whose post-resume
   samples continue from the restored cursor -- no duplicated samples,
   no negative rates, and the run itself stays bit-identical to batch;
4. the Prometheus exposition parses, carries the required series with
   non-negative values, and is scrapable over plain HTTP ``GET
   /metrics`` on the admin socket.
"""

from __future__ import annotations

import json
import os
import re
import socket
import threading

import pytest

from repro.emulation import compile_dataset, replay_bounds
from repro.server import (AdminServer, Counter, MetricsHistory,
                          MultiTenantService, TenantSpec, admin_request,
                          load_history_data, render_html, render_terminal,
                          scrape_metrics, tail_stats)
from repro.server.admin import _tail_stats
from repro.server.metrics import render_prometheus
from repro.stream import CheckpointManager, dataset_event_stream, skip_events

from test_server import HETERO, batch_result, build_policy, make_fleet
from test_compiled_replay import assert_results_equal


@pytest.fixture(scope="module")
def dataset(tiny_dataset):
    return tiny_dataset


@pytest.fixture(scope="module")
def compiled(dataset):
    return compile_dataset(dataset)


@pytest.fixture(scope="module")
def events(dataset):
    return list(dataset_event_stream(dataset))


def _sock(tmp_path, name):
    return f"unix:{tmp_path / name}"


# ---------------------------------------------------------------------------
# Counter


def test_counter_exact_under_concurrent_increments():
    counter = Counter()
    n_threads, n_each = 8, 10_000
    start = threading.Barrier(n_threads)

    def hammer():
        nonlocal counter
        start.wait()
        for _ in range(n_each):
            counter += 1

    threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert int(counter) == n_threads * n_each


def test_counter_behaves_like_its_int():
    c = Counter(3)
    c += 2
    assert c == 5 and c != 4 and c >= 5 and c > 4 and c < 6 and c <= 5
    assert int(c) == 5 and bool(c)
    assert not Counter()
    assert json.dumps(int(c)) == "5"
    other = Counter(5)
    assert c == other  # compares by value across counters
    assert repr(c) == "Counter(5)"


# ---------------------------------------------------------------------------
# tail stats


def test_tail_stats_empty_and_singleton_edges():
    assert tail_stats([]) == {"count": 0}
    one = tail_stats([0.25])
    assert one == {"count": 1, "p50": 0.25, "p95": 0.25, "p99": 0.25,
                   "max": 0.25}
    # the admin module keeps its old name importable (bench uses it)
    assert _tail_stats([]) == {"count": 0}
    two = tail_stats([1.0, 3.0])
    assert two["count"] == 2 and two["p50"] == 2.0 and two["max"] == 3.0


# ---------------------------------------------------------------------------
# MetricsHistory


def test_history_rotation_and_seq_continuity(tmp_path):
    path = str(tmp_path / "hist.jsonl")
    with MetricsHistory(path, max_bytes=300, backups=2) as history:
        for i in range(30):
            history.append({"cursor": i, "boundary": i})
        assert history.seq == 30
        assert history.rotations > 0
        assert os.path.exists(f"{path}.1")
        ring = history.samples()
        assert [s["seq"] for s in ring] == list(range(1, 31))

    # Reopen: seq continues from the surviving files, and the previous
    # incarnation's samples never anchor a rate in the new process.
    with MetricsHistory(path, max_bytes=300, backups=2) as reopened:
        assert reopened.seq == max(s["seq"] for s in reopened.samples())
        assert reopened.rate_anchor(now=1e12) is None
        stamped = reopened.append({"cursor": 99, "boundary": 99})
        assert stamped["seq"] == reopened.seq
        assert reopened.rate_anchor(now=stamped["mono"] + 1.0) == (
            stamped["mono"], 99)


def test_history_load_skips_torn_tail(tmp_path):
    path = str(tmp_path / "torn.jsonl")
    with MetricsHistory(path) as history:
        history.append({"cursor": 1, "boundary": 0})
        history.append({"cursor": 2, "boundary": 1})
    with open(path, "a") as fh:
        fh.write('{"cursor": 3, "boun')  # torn by the crash
    with MetricsHistory(path) as history:
        assert [s["cursor"] for s in history.samples()] == [1, 2]
        assert history.seq == 2


def test_history_rewind_keeps_checkpoint_prefix(tmp_path):
    history = MetricsHistory(str(tmp_path / "rw.jsonl"))
    # A cascade can fire several boundaries at one cursor; the rewind
    # keep-rule is (cursor < C) or (cursor == C and boundary < NB).
    for cursor, boundary in [(10, 0), (20, 1), (30, 2), (30, 3), (30, 4),
                             (40, 5)]:
        history.append({"cursor": cursor, "boundary": boundary})
    dropped = history.rewind(30, next_boundary=3)
    assert dropped == 3
    assert [(s["cursor"], s["boundary"]) for s in history.samples()] == [
        (10, 0), (20, 1), (30, 2)]
    # the live file was atomically rewritten to the same prefix
    with open(history.path) as fh:
        rows = [json.loads(line) for line in fh if line.strip()]
    assert [(s["cursor"], s["boundary"]) for s in rows] == [
        (10, 0), (20, 1), (30, 2)]
    # rewound samples do not anchor rates (the engine will re-append)
    assert history.rate_anchor(now=1e12) is None
    history.close()


# ---------------------------------------------------------------------------
# history-derived admin rates: the concurrent-pollers regression


def test_two_interleaved_pollers_see_consistent_positive_rate(
        dataset, events, tmp_path):
    """Regression: the old per-server ``(then, before)`` window made two
    alternating pollers clobber each other and report zero/garbage."""
    clock = [100.0]
    history = MetricsHistory(str(tmp_path / "hist.jsonl"),
                             clock=lambda: clock[0])
    service = make_fleet(dataset, HETERO[:2], metrics_history=history)
    stop = len(events) // 2
    assert service.run(iter(events), stop_after_events=stop) is None
    newest = history.last()
    assert newest is not None and newest["cursor"] < service.cursor, \
        "precondition: events consumed past the last boundary sample"

    address = _sock(tmp_path, "admin.sock")
    with AdminServer(address, service, clock=lambda: clock[0]) as admin:
        clock[0] += 10.0  # a real window since the newest sample
        expected = (service.cursor - newest["cursor"]) / 10.0
        rates: list[list[float]] = [[], []]
        start = threading.Barrier(2)

        def poll(slot: int) -> None:
            start.wait()
            for _ in range(50):
                out = admin.handle({"cmd": "metrics"})
                assert out["ok"]
                rates[slot].append(out["events_per_second"])

        threads = [threading.Thread(target=poll, args=(slot,))
                   for slot in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every poll of both pollers saw the same positive rate: the
        # anchor is immutable, so interleaving cannot perturb it.
        for observed in rates[0] + rates[1]:
            assert observed == pytest.approx(expected)
            assert observed > 0.0
    history.close()


def test_concurrent_socket_pollers_during_ingest(dataset, events, tmp_path):
    """The acceptance wording verbatim: two concurrent ``admin metrics``
    pollers over the socket, during active (parked mid-flight) ingest,
    each observe consistent positive ``events_per_second``."""
    history = MetricsHistory(str(tmp_path / "hist.jsonl"))
    service = make_fleet(dataset, HETERO[:2], metrics_history=history)
    hold_at = len(events) // 2
    holding = threading.Event()
    release = threading.Event()

    def gated():
        for i, ev in enumerate(events):
            if i == hold_at:
                holding.set()
                assert release.wait(60)
            yield ev

    address = _sock(tmp_path, "admin2.sock")
    with AdminServer(address, service):
        engine = threading.Thread(target=service.run, args=(gated(),),
                                  daemon=True)
        engine.start()
        assert holding.wait(60)
        results: list[list[dict]] = [[], []]
        start = threading.Barrier(2)

        def poll(slot: int) -> None:
            start.wait()
            for _ in range(5):
                results[slot].append(
                    admin_request(address, {"cmd": "metrics"}))

        threads = [threading.Thread(target=poll, args=(slot,))
                   for slot in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        rates = [out["events_per_second"]
                 for outs in results for out in outs]
        assert len(rates) == 10
        for out in results[0] + results[1]:
            assert out["ok"] and out["cursor"] == hold_at
        for rate in rates:
            assert rate > 0.0
        release.set()
        engine.join(timeout=120)
        assert not engine.is_alive()
    history.close()


# ---------------------------------------------------------------------------
# kill + resume: history never forks from the checkpoint chain


def test_resume_continues_history_from_restored_cursor(
        dataset, compiled, events, tmp_path):
    ckdir = str(tmp_path / "ck")
    hist_path = str(tmp_path / "hist.jsonl")

    history = MetricsHistory(hist_path)
    service = make_fleet(dataset, HETERO, checkpoint_dir=ckdir,
                         checkpoint_every_days=7, metrics_history=history)
    stop = int(len(events) * 0.6)
    assert service.run(iter(events), stop_after_events=stop) is None
    pre_crash = history.samples()
    assert pre_crash, "boundaries fired before the crash"
    history.close()  # the process dies here; every sample already flushed

    newest, failures = CheckpointManager(ckdir).latest_verified()
    assert newest is not None and not failures

    history2 = MetricsHistory(hist_path)  # new incarnation, same file
    resumed = MultiTenantService.resume(
        newest, policy_factory=lambda spec: build_policy(spec, dataset),
        checkpoint_manager=CheckpointManager(ckdir),
        metrics_history=history2)
    # The rewind dropped exactly the samples ahead of the checkpoint.
    for sample in history2.samples():
        assert sample["cursor"] <= resumed.cursor
        assert (sample["cursor"] < resumed.cursor
                or sample["boundary"] < resumed.next_boundary)

    results = resumed.run(skip_events(iter(events), resumed.cursor))
    for spec in HETERO:
        assert_results_equal(results[spec.name],
                             batch_result(dataset, compiled, spec))
    history2.close()

    # Read the whole persisted history back: one coherent timeline.
    with open(hist_path) as fh:
        rows = [json.loads(line) for line in fh if line.strip()]
    assert rows
    boundaries = [r["boundary"] for r in rows]
    cursors = [r["cursor"] for r in rows]
    assert boundaries == sorted(boundaries)
    assert len(set(boundaries)) == len(boundaries), \
        "a resumed boundary was sampled twice"
    assert cursors == sorted(cursors), "cursor regressed across resume"
    # post-resume samples continue from the restored cursor
    post = [r for r in rows if r["boundary"] >= resumed.next_boundary - 1]
    assert post and all(r["cursor"] >= min(cursors) for r in post)
    # no negative rates between consecutive same-incarnation samples
    for prev, cur in zip(rows, rows[1:]):
        dc = cur["cursor"] - prev["cursor"]
        assert dc >= 0
        if cur["seq"] == prev["seq"] + 1 and cur["mono"] >= prev["mono"]:
            dt = cur["mono"] - prev["mono"]
            assert dt >= 0.0 and (dt == 0.0 or dc / dt >= 0.0)
    # the file's own final state equals the finished run's counters
    assert rows[-1]["cursor"] == len(events)


# ---------------------------------------------------------------------------
# checkpoint age: one clock source, clamped


def test_checkpoint_age_same_clock_never_negative(dataset, events, tmp_path):
    wall = [1000.0]
    service = make_fleet(dataset, HETERO[:1],
                         checkpoint_dir=str(tmp_path / "ck"),
                         wall=lambda: wall[0])
    service.run(iter(events))
    assert service.stats["checkpoints_written"] >= 1
    wall[0] += 12.5
    assert service.checkpoint_age() == pytest.approx(12.5)
    # An injected clock rewound *before* the write: clamped, not negative.
    wall[0] -= 500.0
    assert service.checkpoint_age() == 0.0
    # The mtime fallback (links inherited from a dead process) clamps too.
    service._last_checkpoint_path = None
    assert service.checkpoint_age() == 0.0


def test_next_boundary_is_public(dataset, events):
    service = make_fleet(dataset, HETERO[:1])
    assert service.next_boundary == 0
    service.run(iter(events), stop_after_events=len(events) // 2)
    assert service.next_boundary == service._next_boundary > 0


# ---------------------------------------------------------------------------
# Prometheus exposition


#: metric line: name{labels} value  (labels optional)
_SERIES_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN)$")

REQUIRED_SERIES = (
    "repro_up",
    "repro_cursor_events",
    "repro_next_boundary_day",
    "repro_ingest_events_per_second",
    "repro_events_total",
    "repro_activeness_evals_total",
    "repro_refold_fraction",
    "repro_checkpoints_written_total",
    "repro_tenant_triggers_total",
    "repro_tenant_live_bytes",
    "repro_trigger_latency_seconds_count",
)


def _parse_exposition(text):
    """{series_name: [(labels, value)]} plus format assertions."""
    seen: dict[str, list] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ",
                            line), line
            continue
        m = _SERIES_RE.match(line)
        assert m, f"unparsable exposition line: {line!r}"
        name, labels, value = m.groups()
        seen.setdefault(name, []).append((labels or "", float(value)))
    return seen


def test_prometheus_exposition_parses_with_required_series(
        dataset, events, tmp_path):
    history = MetricsHistory(str(tmp_path / "hist.jsonl"))
    service = make_fleet(dataset, HETERO[:2],
                         checkpoint_dir=str(tmp_path / "ck"),
                         metrics_history=history)
    service.run(iter(events))
    text = render_prometheus(service, history=history, rate=123.0,
                             uptime=5.0)
    seen = _parse_exposition(text)
    for name in REQUIRED_SERIES:
        assert name in seen, f"required series {name} missing"
        for _labels, value in seen[name]:
            assert value >= 0.0, f"{name} went negative: {value}"
    assert seen["repro_up"][0][1] == 1.0
    assert seen["repro_cursor_events"][0][1] == len(events)
    kinds = {labels for labels, _v in seen["repro_events_total"]}
    assert kinds == {'{kind="job"}', '{kind="publication"}',
                     '{kind="access"}'}
    tenants = {labels for labels, _v in seen["repro_tenant_live_bytes"]}
    assert tenants == {'{tenant="a"}', '{tenant="b"}'}
    # one HELP/TYPE block per family, not per series
    assert text.count("# TYPE repro_events_total ") == 1
    assert "repro_metrics_history_samples_total" in seen
    history.close()


def test_prometheus_label_escaping():
    from repro.server.metrics import _label_escape

    assert _label_escape('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


def test_http_scrape_on_admin_socket(dataset, events, tmp_path):
    history = MetricsHistory(str(tmp_path / "hist.jsonl"))
    service = make_fleet(dataset, HETERO[:2], metrics_history=history)
    service.run(iter(events), stop_after_events=len(events) // 2)
    address = _sock(tmp_path, "scrape.sock")
    with AdminServer(address, service) as admin:
        body = scrape_metrics(address)
        seen = _parse_exposition(body)
        for name in ("repro_up", "repro_cursor_events",
                     "repro_ingest_events_per_second",
                     "repro_admin_requests_total"):
            assert name in seen
        # frames still work on the same socket after HTTP traffic
        health = admin_request(address, {"cmd": "health"})
        assert health["ok"] and health["next_boundary"] >= 1

        # unknown path: a 404, not a hang or a frame error
        with pytest.raises(ConnectionError, match="404"):
            _http_get(address, "/nope")
        assert int(admin.http_requests) >= 2
    history.close()


def _http_get(address, path):
    from repro.server.protocol import connect_socket

    sock = connect_socket(address, timeout=10.0)
    try:
        sock.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    finally:
        sock.close()
    status = data.split(b"\r\n", 1)[0].decode()
    if " 200 " not in f"{status} ":
        raise ConnectionError(f"GET {path} failed: {status}")
    return data


def test_admin_metrics_history_and_export(dataset, events, tmp_path):
    history = MetricsHistory(str(tmp_path / "hist.jsonl"))
    service = make_fleet(dataset, HETERO[:2], metrics_history=history)
    service.run(iter(events))
    address = _sock(tmp_path, "exp.sock")
    with AdminServer(address, service):
        out = admin_request(address, {"cmd": "metrics", "history": 3})
        assert out["ok"] and len(out["history"]) == 3
        assert out["history_samples"] == history.seq
        assert [s["seq"] for s in out["history"]] == sorted(
            s["seq"] for s in out["history"])
        exported = admin_request(address, {"cmd": "export",
                                           "format": "prom"})
        assert exported["ok"] and exported["format"] == "prom"
        assert "repro_up 1" in exported["text"]
        assert "version=0.0.4" in exported["content_type"]
        bad = admin_request(address, {"cmd": "export", "format": "xml"})
        assert not bad["ok"] and "unknown export format" in bad["error"]
        activity = admin_request(address, {"cmd": "activity"})
        assert activity["ok"] and activity["params"]
        for entry in activity["params"].values():
            assert entry["users"] >= entry["op_active"] >= 0
            assert "op_rank_percentiles" in entry
        assert set(activity["tenants"]) == {"a", "b"}
    history.close()


# ---------------------------------------------------------------------------
# dashboard


def test_dashboard_renders_live_and_offline(dataset, events, tmp_path):
    from repro.server import fetch_dashboard_data

    hist_path = str(tmp_path / "hist.jsonl")
    history = MetricsHistory(hist_path)
    service = make_fleet(dataset, HETERO[:2],
                         checkpoint_dir=str(tmp_path / "ck"),
                         metrics_history=history)
    service.run(iter(events))
    address = _sock(tmp_path, "dash.sock")
    with AdminServer(address, service):
        data = fetch_dashboard_data(address, samples=50)
    terminal = render_terminal(data)
    assert "repro retention dashboard" in terminal
    assert "tenants" in terminal and " a " in terminal
    html_page = render_html(data)
    assert html_page.startswith("<!DOCTYPE html>")
    assert "<svg" in html_page or "not enough samples" in html_page
    assert 'tenant' in html_page
    history.close()

    # offline: the same renderers work from the history file alone
    offline = load_history_data(hist_path, samples=50)
    assert offline["history"]
    assert "repro retention dashboard" in render_terminal(offline)
    assert render_html(offline).startswith("<!DOCTYPE html>")


def test_dashboard_cli_offline(dataset, events, tmp_path, capsys):
    from repro.cli.main import main

    hist_path = str(tmp_path / "hist.jsonl")
    history = MetricsHistory(hist_path)
    service = make_fleet(dataset, HETERO[:2], metrics_history=history)
    service.run(iter(events))
    history.close()

    assert main(["dashboard", "--history-file", hist_path]) == 0
    assert "repro retention dashboard" in capsys.readouterr().out

    out_html = str(tmp_path / "dash.html")
    assert main(["dashboard", "--history-file", hist_path,
                 "--out", out_html]) == 0
    with open(out_html) as fh:
        assert fh.read().startswith("<!DOCTYPE html>")
    # exactly one data source must be chosen
    assert main(["dashboard"]) == 1


# ---------------------------------------------------------------------------
# engine sampling details


def test_samples_carry_tenant_stats_and_stream_extra(dataset, events,
                                                     tmp_path):
    history = MetricsHistory(str(tmp_path / "hist.jsonl"))
    service = make_fleet(dataset, HETERO[:2], metrics_history=history)
    service.sample_extra = lambda: {"quarantined": 7}
    service.run(iter(events))
    newest = history.last()
    assert newest is not None
    assert newest["stream"] == {"quarantined": 7}
    assert set(newest["tenants"]) == {"a", "b"}
    for info in newest["tenants"].values():
        assert info["live_bytes"] >= 0 and info["triggers"] >= 1
        assert info["purged_bytes"] >= 0
        assert info["trigger_latency"]["count"] >= 1
    # purge totals in the sample match the engine's cumulative stats
    for tenant in service.tenants:
        info = newest["tenants"][tenant.name]
        assert info["purged_bytes"] == tenant.stats["purged_bytes"]
        assert info["target_misses"] == tenant.stats["target_misses"]
    history.close()


def test_sampling_failure_never_stops_the_engine(dataset, events, tmp_path):
    history = MetricsHistory(str(tmp_path / "hist.jsonl"))
    service = make_fleet(dataset, HETERO[:1], metrics_history=history)
    history._fh.close()  # simulate the history file going away mid-run
    results = service.run(iter(events))
    assert results is not None  # the engine finished regardless
    assert service.last_metrics_error is not None
