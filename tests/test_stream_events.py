"""Merged event stream: ordering, tie-breaking, validation, resume skip."""

from __future__ import annotations

import itertools

import pytest

from repro.cli.workspace import save_workspace
from repro.stream import (
    EVENT_ACCESS,
    EVENT_JOB,
    EVENT_PUBLICATION,
    StreamEvent,
    dataset_event_stream,
    merge_event_streams,
    skip_events,
    workspace_event_stream,
)
from repro.traces.schema import AppAccessRecord, JobRecord, PublicationRecord


def job(ts, uid=1, job_id=0):
    return JobRecord(job_id=job_id, uid=uid, submit_ts=ts, start_ts=ts,
                     end_ts=ts + 3600, num_nodes=1)


def pub(ts, pub_id=0):
    return PublicationRecord(pub_id=pub_id, ts=ts, author_uids=[1],
                             citations=0)


def access(ts, path="/proj/a/x"):
    return AppAccessRecord(ts=ts, uid=1, path=path)


def test_merge_is_time_ordered(tiny_dataset):
    stream = dataset_event_stream(tiny_dataset)
    last = None
    count = 0
    for event in stream:
        if last is not None:
            assert event.ts >= last
        last = event.ts
        count += 1
    assert count == (len(tiny_dataset.jobs)
                     + len(tiny_dataset.publications)
                     + len(tiny_dataset.accesses))


def test_merge_ties_put_activity_before_access():
    # A purge trigger at instant t_c must see every activity with
    # ts <= t_c, so at equal timestamps jobs and publications sort
    # before the access records of the same instant.
    events = list(merge_event_streams(
        jobs=[job(100)], publications=[pub(100)], accesses=[access(100)]))
    assert [e.kind for e in events] == [EVENT_JOB, EVENT_PUBLICATION,
                                        EVENT_ACCESS]


def test_merge_is_stable_within_source():
    jobs = [job(50, job_id=1), job(50, job_id=2), job(50, job_id=3)]
    events = list(merge_event_streams(jobs=jobs))
    assert [e.payload.job_id for e in events] == [1, 2, 3]


@pytest.mark.parametrize("source", ["jobs", "publications", "accesses"])
def test_merge_rejects_time_regression(source):
    kwargs = {
        "jobs": [job(100), job(99)],
        "publications": [pub(100), pub(99)],
        "accesses": [access(100), access(99)],
    }
    stream = merge_event_streams(**{source: kwargs[source]})
    with pytest.raises(ValueError, match="regress"):
        list(stream)


def test_workspace_stream_matches_dataset_stream(tiny_dataset, tmp_path):
    directory = save_workspace(tiny_dataset, str(tmp_path / "ws"))
    from_disk = list(workspace_event_stream(directory))
    in_memory = list(dataset_event_stream(tiny_dataset))
    assert len(from_disk) == len(in_memory)
    for a, b in zip(from_disk, in_memory):
        assert (a.ts, a.kind) == (b.ts, b.kind)
        assert a.payload == b.payload


def test_workspace_stream_is_lazy(tiny_dataset, tmp_path):
    directory = save_workspace(tiny_dataset, str(tmp_path / "ws"))
    stream = workspace_event_stream(directory)
    head = list(itertools.islice(stream, 5))
    assert len(head) == 5
    assert all(isinstance(e, StreamEvent) for e in head)


def test_skip_events_positions_cursor(tiny_dataset):
    everything = list(dataset_event_stream(tiny_dataset))
    tail = list(skip_events(dataset_event_stream(tiny_dataset), 100))
    assert tail == everything[100:]
    assert list(skip_events(iter(everything), 0)) == everything
    assert list(skip_events(iter([]), 5)) == []


def test_skip_events_rejects_negative_cursor():
    with pytest.raises(ValueError):
        skip_events(iter([]), -1)
