"""Tests for the seeded distribution helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth import (
    bounded_pareto,
    lognormal_int,
    poisson_burst_times,
    spawn_rng,
    weighted_choice,
    zipf_bounded,
)


def test_spawn_rng_deterministic_and_stream_separated():
    a = spawn_rng(1, "jobs", 5).integers(0, 1 << 30, 10)
    b = spawn_rng(1, "jobs", 5).integers(0, 1 << 30, 10)
    c = spawn_rng(1, "apps", 5).integers(0, 1 << 30, 10)
    d = spawn_rng(2, "jobs", 5).integers(0, 1 << 30, 10)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)
    assert not np.array_equal(a, d)


def test_zipf_bounded_support():
    rng = spawn_rng(0, "z")
    draws = zipf_bounded(rng, 1.5, 20, size=2000)
    assert draws.min() >= 1 and draws.max() <= 20
    # Rank 1 should dominate.
    assert (draws == 1).sum() > (draws == 20).sum()


def test_zipf_bounded_rejects_bad_high():
    with pytest.raises(ValueError):
        zipf_bounded(spawn_rng(0), 1.5, 0)


def test_lognormal_int_bounds():
    rng = spawn_rng(0, "l")
    draws = lognormal_int(rng, mean=50, sigma=1.0, low=1, high=500, size=3000)
    assert draws.min() >= 1 and draws.max() <= 500
    assert 20 < draws.mean() < 120  # clipped mean near target


def test_lognormal_int_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        lognormal_int(spawn_rng(0), 10, 1.0, 5, 1)


def test_bounded_pareto_support():
    rng = spawn_rng(0, "p")
    draws = bounded_pareto(rng, 1.1, 10.0, 1000.0, size=3000)
    assert draws.min() >= 10.0 and draws.max() <= 1000.0
    assert np.median(draws) < draws.mean()  # right-skewed


def test_bounded_pareto_validation():
    with pytest.raises(ValueError):
        bounded_pareto(spawn_rng(0), 1.0, 10.0, 5.0)
    with pytest.raises(ValueError):
        bounded_pareto(spawn_rng(0), 1.0, 0.0, 5.0)


@settings(max_examples=30, deadline=None)
@given(st.floats(0.3, 3.0), st.floats(1.0, 100.0), st.floats(200.0, 1e6))
def test_bounded_pareto_always_in_band(alpha, low, high):
    draws = bounded_pareto(spawn_rng(7, "hb"), alpha, low, high, size=200)
    assert (draws >= low).all() and (draws <= high).all()


def test_poisson_burst_times_window_and_sorted():
    rng = spawn_rng(0, "b")
    times = poisson_burst_times(rng, 1000, 100_000, n_bursts=10,
                                events_per_burst_mean=5.0,
                                burst_span_seconds=500)
    assert (times >= 1000).all() and (times < 100_000).all()
    assert (np.diff(times) >= 0).all()


def test_poisson_burst_times_empty_cases():
    rng = spawn_rng(0, "b2")
    assert poisson_burst_times(rng, 100, 100, 5, 3.0, 10).size == 0
    assert poisson_burst_times(rng, 0, 100, 0, 3.0, 10).size == 0


def test_weighted_choice():
    rng = spawn_rng(0, "w")
    picks = [weighted_choice(rng, ["a", "b"], [0.99, 0.01])
             for _ in range(200)]
    assert picks.count("a") > picks.count("b")
