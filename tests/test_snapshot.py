"""Tests for the sharded metadata-snapshot pipeline."""

import gzip
import os

import pytest

from repro.vfs import (
    SnapshotRecord,
    SnapshotWriter,
    iter_snapshot,
    load_filesystem,
    read_shard,
    shard_paths,
    write_snapshot,
)

from conftest import NOW


def _records(n):
    return [SnapshotRecord(f"/s/u{i % 3}/f{i}", (i % 4) + 1,
                           NOW - i, NOW - i, NOW - 2 * i, i % 3)
            for i in range(n)]


def test_record_line_roundtrip():
    rec = SnapshotRecord("/a/b.h5", 4, 10, 20, 30, 7, 1)
    assert SnapshotRecord.from_line(rec.to_line()) == rec


def test_record_malformed_line():
    with pytest.raises(ValueError):
        SnapshotRecord.from_line("too|few|fields\n")


def test_write_read_roundtrip(tmp_path):
    records = _records(25)
    n = write_snapshot(str(tmp_path), records, n_shards=4)
    assert n == 25
    assert len(shard_paths(str(tmp_path))) == 4
    loaded = sorted(iter_snapshot(str(tmp_path)), key=lambda r: r.path)
    assert loaded == sorted(records, key=lambda r: r.path)


def test_round_robin_sharding(tmp_path):
    write_snapshot(str(tmp_path), _records(10), n_shards=3)
    counts = [sum(1 for _ in read_shard(p)) for p in shard_paths(str(tmp_path))]
    assert sorted(counts) == [3, 3, 4]


def test_shards_are_gzipped(tmp_path):
    write_snapshot(str(tmp_path), _records(5), n_shards=1)
    (shard,) = shard_paths(str(tmp_path))
    with gzip.open(shard, "rt") as f:
        assert f.readline().count("|") == 7


def test_writer_rejects_bad_shard_count(tmp_path):
    with pytest.raises(ValueError):
        SnapshotWriter(str(tmp_path), n_shards=0)


def test_load_filesystem_synthesizes_sizes(tmp_path):
    write_snapshot(str(tmp_path), _records(20), n_shards=2)
    fs = load_filesystem(str(tmp_path))
    assert fs.file_count == 20
    assert fs.total_bytes > 0
    assert fs.capacity_bytes == fs.total_bytes  # frozen at load
    meta = fs.stat("/s/u0/f0")
    assert meta is not None and meta.stripe_count == 1


def test_load_filesystem_deterministic(tmp_path):
    write_snapshot(str(tmp_path), _records(30), n_shards=2)
    a = load_filesystem(str(tmp_path), size_seed=5)
    b = load_filesystem(str(tmp_path), size_seed=5)
    assert a.total_bytes == b.total_bytes
    for path, meta in a.iter_files():
        assert b.stat(path).size == meta.size


def test_load_filesystem_explicit_capacity(tmp_path):
    write_snapshot(str(tmp_path), _records(5), n_shards=1)
    fs = load_filesystem(str(tmp_path), capacity_bytes=10 ** 15)
    assert fs.capacity_bytes == 10 ** 15


def test_shard_paths_ignores_other_files(tmp_path):
    write_snapshot(str(tmp_path), _records(4), n_shards=2)
    (tmp_path / "notes.txt").write_text("not a shard")
    assert len(shard_paths(str(tmp_path))) == 2
